"""Linearized singular-value constraints for passivity enforcement.

At each violation frequency omega_nu with singular triplet
(sigma_i, u_i, v_i) of S(j omega_nu), the first-order perturbation of the
singular value under a residue (C-matrix) perturbation is (paper eq. 8)

    delta sigma_i = Re{ u_i^H  deltaS(j omega_nu)  v_i },
    deltaS(j omega_nu)_ab = k(omega_nu)^T delta_c_ab ,

where k(omega) = (j omega I - A_e)^{-1} b_e is the shared element transfer
kernel.  Stacking the per-element coefficients x = [delta_c_ab] row-major
gives one linear constraint row per (frequency, singular value):

    F x <= g ,   g = (1 - margin) - sigma_i              (paper eq. 9)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import active_backend
from repro.statespace.poleresidue import PoleResidueModel


@dataclass(frozen=True)
class ConstraintSet:
    """Linear inequality constraints F x <= g on the flattened perturbation.

    ``x`` flattens the (P, P, N) element-coefficient perturbation in C
    order: x[((a * P) + b) * N + n] = delta_c[a, b, n].

    Each row of eq. (8) is the rank-2 tensor ``Re(w_i (x) k_i)`` with
    ``w_i = conj(u_i) outer conj(v_i)`` (complex, length P^2) and the
    shared element kernel ``k_i = k(omega_i)`` (complex, length N).  The
    optional structured fields expose those factors so the QP solver can
    work in the P^2/N factor spaces instead of sweeping the dense
    (n_c, P^2 N) matrix: ``w_re``/``w_im`` are (n_c, P^2), ``kernels`` is
    the (K, N) complex kernel table over the distinct frequencies, and
    ``freq_index`` maps each row to its kernel.
    """

    matrix: np.ndarray | None
    bounds: np.ndarray
    frequencies: np.ndarray
    sigmas: np.ndarray
    w_re: np.ndarray | None = None
    w_im: np.ndarray | None = None
    kernels: np.ndarray | None = None
    freq_index: np.ndarray | None = None

    @property
    def n_constraints(self) -> int:
        return int(self.bounds.shape[0])

    @property
    def structured(self) -> bool:
        """True when the tensor factors of every row are available."""
        return (
            self.w_re is not None
            and self.w_im is not None
            and self.kernels is not None
            and self.freq_index is not None
        )

    def dense_matrix(self) -> np.ndarray:
        """The dense (n_c, P*P*N) constraint matrix F.

        Structured sets are built without it (the fast QP path works
        entirely in factor space), so it is materialized lazily -- only
        the dense fallback and diagnostics pay for it -- and memoized.
        """
        if self.matrix is not None:
            return self.matrix
        if not self.structured:
            raise ValueError(
                "constraint set has neither a dense matrix nor factors"
            )
        w = self.w_re + 1j * self.w_im
        built = np.real(
            w[:, :, None] * self.kernels[self.freq_index][:, None, :]
        ).reshape(self.n_constraints, -1)
        object.__setattr__(self, "matrix", built)  # memoize (frozen)
        return built

    def residual(self, x: np.ndarray) -> np.ndarray:
        """Constraint slack g - F x (negative entries are violations)."""
        return self.bounds - self.dense_matrix() @ x


def flatten_delta(delta_c: np.ndarray) -> np.ndarray:
    """Flatten a (P, P, N) perturbation into the constraint vector layout."""
    return np.asarray(delta_c, dtype=float).reshape(-1)


def unflatten_delta(x: np.ndarray, n_ports: int, n_states: int) -> np.ndarray:
    """Inverse of :func:`flatten_delta`."""
    return np.asarray(x, dtype=float).reshape(n_ports, n_ports, n_states)


def build_constraints(
    model: PoleResidueModel,
    frequencies: np.ndarray,
    *,
    margin: float = 1e-6,
    include_threshold: float = 0.999,
    symmetric: bool = False,
) -> ConstraintSet:
    """Assemble linearized constraints at the given angular frequencies.

    For each frequency, every singular value above ``include_threshold`` is
    constrained to end up below 1 - margin; constraining the near-violating
    values too prevents the perturbation from pushing a previously safe
    singular value over the limit.

    ``symmetric=True`` (reciprocal models) symmetrizes each row's port
    factor, ``w <- (w + w^T) / 2`` over the (P, P) port block.  For a
    symmetric S this changes nothing to first order -- perturbations
    produced against these constraints are themselves symmetric, and the
    antisymmetric part of ``w`` is orthogonal to symmetric ``delta_c`` --
    but it makes the minimum-norm QP step exactly reciprocity-preserving,
    which keeps every enforcement iterate eligible for the half-size
    Hamiltonian test.
    """
    frequencies = np.atleast_1d(np.asarray(frequencies, dtype=float))
    p = model.n_ports
    n = model.element_state_dimension()
    a_e, b_e = model.element_dynamics()
    eye = np.eye(n)

    empty = ConstraintSet(
        matrix=np.zeros((0, p * p * n)),
        bounds=np.zeros(0),
        frequencies=np.zeros(0),
        sigmas=np.zeros(0),
    )
    if frequencies.size == 0:
        return empty

    # Batched SVDs and element kernels over all frequencies at once.
    backend = active_backend()
    responses = model.frequency_response(frequencies)  # (K, P, P)
    u, sigma, vh = (
        backend.from_device(part)
        for part in backend.svd(backend.asarray(responses))
    )
    systems = 1j * frequencies[:, None, None] * eye - a_e
    kernels = backend.from_device(
        backend.solve(
            backend.asarray(systems),
            backend.asarray(b_e.astype(complex)[None, :, None]),
        )
    )[..., 0]  # (K, N)

    # Row order matches the scalar loop: frequency-major, then singular
    # values in descending order (numpy's nonzero is row-major).
    k_idx, i_idx = np.nonzero(sigma >= include_threshold)
    if k_idx.size == 0:
        return empty
    u_sel = np.conj(u[k_idx, :, i_idx])  # (M, P): conj(u[:, i]) per row
    v_sel = np.conj(vh[k_idx, i_idx, :])  # (M, P): conj(v[b, i]) per row
    # Coefficient of delta_c_ab in delta sigma_i (paper eq. 8):
    #   Re{ conj(u[a,i]) * conj(v[b,i]) * kernel[n] } = Re(w (x) k).
    # Only the factors are stored; the dense matrix is built on demand.
    w = np.einsum("ma,mb->mab", u_sel, v_sel)
    if symmetric:
        w = 0.5 * (w + w.transpose(0, 2, 1))
    w = w.reshape(k_idx.size, p * p)
    return ConstraintSet(
        matrix=None,
        bounds=(1.0 - margin) - sigma[k_idx, i_idx],
        frequencies=frequencies[k_idx],
        sigmas=sigma[k_idx, i_idx],
        w_re=np.ascontiguousarray(w.real),
        w_im=np.ascontiguousarray(w.imag),
        kernels=kernels,
        freq_index=k_idx,
    )
