"""Linearized singular-value constraints for passivity enforcement.

At each violation frequency omega_nu with singular triplet
(sigma_i, u_i, v_i) of S(j omega_nu), the first-order perturbation of the
singular value under a residue (C-matrix) perturbation is (paper eq. 8)

    delta sigma_i = Re{ u_i^H  deltaS(j omega_nu)  v_i },
    deltaS(j omega_nu)_ab = k(omega_nu)^T delta_c_ab ,

where k(omega) = (j omega I - A_e)^{-1} b_e is the shared element transfer
kernel.  Stacking the per-element coefficients x = [delta_c_ab] row-major
gives one linear constraint row per (frequency, singular value):

    F x <= g ,   g = (1 - margin) - sigma_i              (paper eq. 9)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.statespace.poleresidue import PoleResidueModel


@dataclass(frozen=True)
class ConstraintSet:
    """Linear inequality constraints F x <= g on the flattened perturbation.

    ``x`` flattens the (P, P, N) element-coefficient perturbation in C
    order: x[((a * P) + b) * N + n] = delta_c[a, b, n].
    """

    matrix: np.ndarray
    bounds: np.ndarray
    frequencies: np.ndarray
    sigmas: np.ndarray

    @property
    def n_constraints(self) -> int:
        return int(self.matrix.shape[0])

    def residual(self, x: np.ndarray) -> np.ndarray:
        """Constraint slack g - F x (negative entries are violations)."""
        return self.bounds - self.matrix @ x


def flatten_delta(delta_c: np.ndarray) -> np.ndarray:
    """Flatten a (P, P, N) perturbation into the constraint vector layout."""
    return np.asarray(delta_c, dtype=float).reshape(-1)


def unflatten_delta(x: np.ndarray, n_ports: int, n_states: int) -> np.ndarray:
    """Inverse of :func:`flatten_delta`."""
    return np.asarray(x, dtype=float).reshape(n_ports, n_ports, n_states)


def build_constraints(
    model: PoleResidueModel,
    frequencies: np.ndarray,
    *,
    margin: float = 1e-6,
    include_threshold: float = 0.999,
) -> ConstraintSet:
    """Assemble linearized constraints at the given angular frequencies.

    For each frequency, every singular value above ``include_threshold`` is
    constrained to end up below 1 - margin; constraining the near-violating
    values too prevents the perturbation from pushing a previously safe
    singular value over the limit.
    """
    frequencies = np.atleast_1d(np.asarray(frequencies, dtype=float))
    p = model.n_ports
    n = model.element_state_dimension()
    a_e, b_e = model.element_dynamics()
    eye = np.eye(n)

    rows: list[np.ndarray] = []
    bounds: list[float] = []
    used_freqs: list[float] = []
    used_sigmas: list[float] = []
    for omega in frequencies:
        response = model.frequency_response(np.array([omega]))[0]
        u, sigma, vh = np.linalg.svd(response)
        kernel = np.linalg.solve(1j * omega * eye - a_e, b_e)  # (N,)
        for i, sigma_i in enumerate(sigma):
            if sigma_i < include_threshold:
                continue
            # Coefficient of delta_c_ab in delta sigma_i:
            #   Re{ conj(u[a,i]) * v[b,i] * kernel[n] }
            outer_uv = np.conj(u[:, i])[:, None] * vh[i, :].conj()[None, :]
            row = np.real(
                outer_uv[:, :, None] * kernel[None, None, :]
            ).reshape(-1)
            rows.append(row)
            bounds.append((1.0 - margin) - sigma_i)
            used_freqs.append(float(omega))
            used_sigmas.append(float(sigma_i))

    if not rows:
        return ConstraintSet(
            matrix=np.zeros((0, p * p * n)),
            bounds=np.zeros(0),
            frequencies=np.zeros(0),
            sigmas=np.zeros(0),
        )
    return ConstraintSet(
        matrix=np.vstack(rows),
        bounds=np.asarray(bounds),
        frequencies=np.asarray(used_freqs),
        sigmas=np.asarray(used_sigmas),
    )
