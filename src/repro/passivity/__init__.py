"""Passivity assessment and enforcement for scattering macromodels.

Implements the paper's Sec. III machinery: Hamiltonian-based passivity
checking, iterative residue (C-matrix) perturbation with linearized
singular-value constraints (eqs. 8-9), and Gramian-characterized quadratic
cost functions -- the standard L2 norm (eq. 10) and pluggable weighted
variants (the sensitivity-weighted cost of eqs. 18-21 lives in
:mod:`repro.sensitivity.weighted_norm`).
"""

from repro.passivity.check import (
    PassivityReport,
    ViolationBand,
    check_passivity,
    check_passivity_sampling,
)
from repro.passivity.cost import (
    BlockDiagonalCost,
    l2_gramian_cost,
    relative_error_cost,
    sampled_norm_cost,
)
from repro.passivity.enforce import (
    EnforcementOptions,
    EnforcementResult,
    enforce_passivity,
)
from repro.passivity.engine import CheckerOptions, PassivityChecker
from repro.passivity.qp import solve_block_qp

__all__ = [
    "PassivityReport",
    "ViolationBand",
    "check_passivity",
    "check_passivity_sampling",
    "CheckerOptions",
    "PassivityChecker",
    "BlockDiagonalCost",
    "l2_gramian_cost",
    "relative_error_cost",
    "sampled_norm_cost",
    "EnforcementOptions",
    "EnforcementResult",
    "enforce_passivity",
    "solve_block_qp",
]
