"""Content-addressed cache of completed flow runs.

The cache key is a SHA-256 over everything that determines a flow result:
the raw tabulated scattering data (frequency grid, sample matrices, the
reference resistance), the termination network, the observation port, and
the full flow configuration.  Two campaign runs that resolve to the same
inputs therefore share one cache entry even if their scenario *names*
differ, and any change to the data or options is guaranteed to miss.

Each entry is a single JSON file written through
:mod:`repro.statespace.serialization`: the passive (weighted-cost) model is
the payload and the run record (metrics, diagnostics, scenario parameters)
rides along as model metadata.  Writes are atomic (temp file + rename), so
concurrent workers computing the same key can race harmlessly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path

import numpy as np

from repro.flow.macromodel import FlowOptions
from repro.obs import telemetry as obs
from repro.pdn.spec import termination_to_dict
from repro.pdn.termination import TerminationNetwork
from repro.sparams.network import NetworkData
from repro.statespace.poleresidue import PoleResidueModel
from repro.statespace.serialization import (
    load_model_with_metadata,
    sanitize_metadata,
    save_model,
)

_KEY_FORMAT = "repro.flow-cache/1"


def _options_token(options: FlowOptions) -> str:
    payload = sanitize_metadata(dataclasses.asdict(options))
    return json.dumps(payload, sort_keys=True)


def flow_fingerprint(
    data: NetworkData,
    termination: TerminationNetwork,
    observe_port: int,
    options: FlowOptions | None = None,
) -> str:
    """Hex digest identifying one flow computation by content."""
    options = options or FlowOptions()
    hasher = hashlib.sha256()
    hasher.update(_KEY_FORMAT.encode())
    hasher.update(data.kind.encode())
    hasher.update(np.float64(data.z0).tobytes())
    hasher.update(np.ascontiguousarray(data.frequencies, dtype=float).tobytes())
    hasher.update(np.ascontiguousarray(data.samples, dtype=complex).tobytes())
    hasher.update(json.dumps(termination_to_dict(termination),
                             sort_keys=True).encode())
    hasher.update(np.int64(observe_port).tobytes())
    hasher.update(_options_token(options).encode())
    return hasher.hexdigest()


@dataclasses.dataclass(frozen=True)
class CachedRun:
    """One cache entry: the passive model plus the stored run record."""

    key: str
    model: PoleResidueModel
    record: dict


class FlowCache:
    """Directory-backed content-addressed store of flow results."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        # Two-level fan-out keeps directory listings manageable at scale.
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> CachedRun | None:
        """Look up an entry; ``None`` on miss or unreadable entry."""
        path = self._path(key)
        if not path.exists():
            obs.incr("flow_cache.misses")
            return None
        try:
            model, metadata = load_model_with_metadata(path)
        except (ValueError, json.JSONDecodeError, OSError):
            # A corrupt entry (interrupted write of an older, non-atomic
            # producer) behaves like a miss and is overwritten on put.
            obs.incr("flow_cache.misses")
            return None
        obs.incr("flow_cache.hits")
        return CachedRun(key=key, model=model, record=metadata)

    def put(self, key: str, model: PoleResidueModel, record: dict) -> None:
        """Store an entry atomically under its content key."""
        obs.incr("flow_cache.puts")
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        os.close(fd)
        try:
            save_model(model, tmp_name, metadata=record)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete all entries; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            path.unlink()
            removed += 1
        return removed
