"""On-disk registry of campaign results.

Layout (one directory per campaign)::

    <root>/
        manifest.json             # campaign spec + per-run index
        runs/<run_id>/
            result.json           # status, timings, metrics, scenario
            model.json            # passive model + provenance metadata

``result.json`` files are self-contained JSON records so the registry can
be queried without loading any model artifacts; the model files round-trip
through :mod:`repro.statespace.serialization` with the run record attached
as metadata.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Iterator

from repro.statespace.poleresidue import PoleResidueModel
from repro.statespace.serialization import (
    load_model_with_metadata,
    sanitize_metadata,
    save_model,
)

_MANIFEST_FORMAT = "repro.campaign-manifest"
_MANIFEST_VERSION = 1

_MANIFEST_RUN_FIELDS = (
    "run_id", "name", "status", "cache_hit", "resumed", "duration_s",
    "error", "error_code", "failed_stage", "attempts",
)


class CampaignRegistry:
    """Result store rooted at one campaign directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.runs_dir = self.root / "runs"
        self.runs_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def record_run(
        self, record: dict, model: PoleResidueModel | None = None
    ) -> Path:
        """Persist one run record (and its model artifact, if any)."""
        run_id = record["run_id"]
        run_dir = self.runs_dir / run_id
        run_dir.mkdir(parents=True, exist_ok=True)
        payload = sanitize_metadata(record)
        (run_dir / "result.json").write_text(
            json.dumps(payload, indent=1), encoding="utf-8"
        )
        if model is not None:
            save_model(model, run_dir / "model.json", metadata=payload)
        return run_dir

    def write_manifest(self, campaign: dict, records: list[dict]) -> Path:
        """Write the campaign-level index of all runs.

        The index covers every run stored in the registry, not just the
        current invocation's ``records``: a filtered or partial re-run
        into the same registry must not orphan earlier runs from the
        manifest.  The passed records overlay the stored ones so
        invocation-level state (e.g. ``resumed``) is preserved.
        """
        index: dict[str, dict] = {}
        for record in self.iter_results():
            index[record["run_id"]] = {
                key: record.get(key) for key in _MANIFEST_RUN_FIELDS
            }
        for record in records:
            index[record["run_id"]] = {
                key: record.get(key) for key in _MANIFEST_RUN_FIELDS
            }
        manifest = {
            "format": _MANIFEST_FORMAT,
            "version": _MANIFEST_VERSION,
            "written_unix": time.time(),
            "campaign": sanitize_metadata(campaign),
            "n_runs": len(index),
            "runs": [index[run_id] for run_id in sorted(index)],
        }
        path = self.root / "manifest.json"
        path.write_text(json.dumps(manifest, indent=1), encoding="utf-8")
        return path

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load_manifest(self) -> dict:
        path = self.root / "manifest.json"
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("format") != _MANIFEST_FORMAT:
            raise ValueError(f"{path}: not a {_MANIFEST_FORMAT} file")
        if payload.get("version") != _MANIFEST_VERSION:
            raise ValueError(
                f"{path}: unsupported version {payload.get('version')!r}"
            )
        return payload

    def has_result(self, run_id: str) -> bool:
        return (self.runs_dir / run_id / "result.json").exists()

    def load_result(self, run_id: str) -> dict:
        path = self.runs_dir / run_id / "result.json"
        return json.loads(path.read_text(encoding="utf-8"))

    def load_model(self, run_id: str) -> tuple[PoleResidueModel, dict]:
        """The stored passive model and its provenance metadata."""
        return load_model_with_metadata(self.runs_dir / run_id / "model.json")

    def iter_results(self) -> Iterator[dict]:
        """All stored run records, in sorted run-ID order."""
        for path in sorted(self.runs_dir.glob("*/result.json")):
            yield json.loads(path.read_text(encoding="utf-8"))

    def completed_run_ids(self) -> set[str]:
        """Run IDs that finished successfully (resume skips these)."""
        return {
            record["run_id"]
            for record in self.iter_results()
            if record.get("status") == "ok"
        }

    def failed_run_ids(self) -> set[str]:
        """Run IDs whose stored record failed (retry-failed re-runs these)."""
        return {
            record["run_id"]
            for record in self.iter_results()
            if record.get("status") == "failed"
        }

    # ------------------------------------------------------------------
    # Queries / aggregation
    # ------------------------------------------------------------------
    def query(
        self, predicate: Callable[[dict], bool] | None = None
    ) -> list[dict]:
        """Run records, optionally filtered by a predicate."""
        results = self.iter_results()
        if predicate is None:
            return list(results)
        return [record for record in results if predicate(record)]


def metric_value(record: dict, metric: str) -> float | None:
    """Fetch a numeric metric from a run record (``None`` when absent)."""
    value = (record.get("metrics") or {}).get(metric)
    return None if value is None else float(value)


def worst_by_group(
    records: list[dict],
    group_key: Callable[[dict], object] | str,
    metric: str,
) -> dict:
    """Worst (largest) value of a metric per group of runs.

    ``group_key`` is either a callable on the record or the name of a
    scenario parameter (e.g. ``"weight_mode"``).  Returns
    ``{group: {"run_id": ..., "value": ...}}``; failed runs and runs
    missing the metric are skipped.  The canonical use is the campaign
    question "worst max-relative-Z error per weight mode".
    """
    if isinstance(group_key, str):
        param = group_key

        def key(record: dict):
            return (record.get("scenario") or {}).get(param)
    else:
        key = group_key
    worst: dict = {}
    for record in records:
        value = metric_value(record, metric)
        if value is None:
            continue
        group = key(record)
        if group not in worst or value > worst[group]["value"]:
            worst[group] = {"run_id": record.get("run_id"), "value": value}
    return worst
