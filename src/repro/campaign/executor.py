"""Parallel campaign execution.

The unit of work is :func:`execute_scenario`: a module-level function (so
it pickles to :class:`~concurrent.futures.ProcessPoolExecutor` workers)
that builds the scenario's PDN variant, consults the content-addressed
cache, runs the sensitivity-weighted flow on a miss, and returns a plain
JSON-compatible run record plus the passive model.

Failure isolation is two-layered: the worker converts any exception into a
``status="failed"`` record (one diverging scenario never aborts the
campaign), and the dispatcher additionally guards ``future.result()`` so
even a crashed worker process only fails its own scenario.

Two batch-level optimizations live in :func:`run_campaign`:

* **BLAS thread budgeting** -- every worker process caps its BLAS/OpenMP
  thread pool to ``cpu_count // jobs`` (overridable).  Without the cap,
  each worker's BLAS spawns one thread per core and N workers fight over
  the same cores; the oversubscription used to *erase* the pool speedup
  (tabH measured 0.98x for 2 workers).  The applied budget and the
  mechanism that enforced it are recorded in each run record.
* **Shared standard fits** -- scenarios of a sweep that differ only in
  termination knobs reuse the same scattering data, so their (expensive,
  weight-independent) standard vector fits are identical.  The dispatcher
  groups pending scenarios by standard-fit fingerprint and computes one
  fit per group through :func:`repro.vectfit.core.fit_many`.  Delivery is
  store-level: with caching enabled the fits are written into the
  campaign's content-addressed :class:`~repro.api.artifacts.ArtifactStore`
  under :class:`~repro.api.stages.StandardFitStage`'s own content key, and
  every worker's pipeline picks them up as ordinary stage cache hits (the
  same mechanism that makes re-runs resume stage by stage).  Without a
  cache directory the fits are shipped to workers by value, as before.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path

from repro.api.artifacts import ArtifactStore
from repro.api.config import ReproConfig
from repro.api.stages import StandardFitStage
from repro.campaign.cache import FlowCache, flow_fingerprint
from repro.campaign.registry import CampaignRegistry
from repro.campaign.scenario import CampaignSpec, ScenarioSpec
from repro.flow.macromodel import run_flow
from repro.flow.metrics import accuracy_table
from repro.obs import telemetry as obs
from repro.obs.metrics import build_campaign_metrics, write_metrics_files
from repro.obs.telemetry import telemetry_session
from repro.resilience import faultinject
from repro.resilience.errors import error_code_of, stage_of
from repro.resilience.retry import RetryPolicy
from repro.statespace.poleresidue import PoleResidueModel
from repro.util.logging import enable_console_logging, get_logger
from repro.vectfit.core import VFResult, fit_many
from repro.vectfit.options import VFOptions

_LOG = get_logger(__name__)

#: Environment knobs honoured by the common BLAS/OpenMP runtimes; set in
#: every worker before heavy imports run so freshly-loaded libraries obey
#: the budget even when the runtime API probe below fails.
_BLAS_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)

#: Thread budget applied to this process (None = uncapped), and the
#: mechanism that enforced it; recorded in run records for forensics.
_WORKER_BLAS_LIMIT: int | None = None
_WORKER_BLAS_METHOD: str | None = None


def limit_blas_threads(limit: int) -> str:
    """Best-effort cap of this process's BLAS/OpenMP thread pools.

    Worker processes are forked with NumPy -- and its already-initialized
    OpenBLAS thread pool -- inherited from the parent, so environment
    variables alone arrive too late.  Three mechanisms are tried, most
    reliable first; the one that succeeds is returned (and recorded in
    run records):

    1. ``threadpoolctl`` when installed (handles every BLAS flavour);
    2. the runtime ``*set_num_threads`` entry point of the OpenBLAS
       shared library bundled with the NumPy/SciPy wheels, located via
       ``ctypes`` (covers the common pip-installed stack);
    3. the environment variables only (effective for libraries loaded
       after this call, e.g. under a ``spawn`` start method).
    """
    if limit < 1:
        raise ValueError("limit must be at least 1")  # reprolint: disable=error-taxonomy -- caller-argument validation, raised before any scenario runs
    for var in _BLAS_ENV_VARS:
        os.environ[var] = str(limit)
    try:
        import threadpoolctl

        threadpoolctl.threadpool_limits(limit)
        return "threadpoolctl"
    except ImportError:
        pass
    try:
        import ctypes
        import glob
        from pathlib import Path

        import numpy

        site_dir = Path(numpy.__file__).resolve().parent.parent
        pattern = str(site_dir / "*.libs" / "lib*openblas*.so*")
        symbols = (
            "openblas_set_num_threads",
            "openblas_set_num_threads64_",
            "scipy_openblas_set_num_threads",
            "scipy_openblas_set_num_threads64_",
        )
        hit = None
        for shared_object in sorted(glob.glob(pattern)):
            try:
                library = ctypes.CDLL(shared_object)
            except OSError:
                continue
            for symbol in symbols:
                setter = getattr(library, symbol, None)
                if setter is not None:
                    setter(int(limit))
                    hit = "ctypes-openblas"
        if hit:
            return hit
    except Exception:  # noqa: BLE001 -- probing must never break a worker
        pass
    return "env-only"


def default_blas_threads(jobs: int) -> int:
    """Per-worker thread budget: share the machine's cores evenly."""
    return max(1, (os.cpu_count() or 1) // max(jobs, 1))

def default_jobs() -> int:
    """Default worker count: the machine's cores, capped at 8."""
    return max(1, min(os.cpu_count() or 1, 8))


def _backend_environment(requested: str) -> dict:
    """Resolved array-backend description for run records and telemetry.

    Never raises: an unavailable backend (requested but not installed in
    this process) is reported with ``device: None`` instead of failing the
    bookkeeping -- the flow itself raises the actionable ImportError.
    """
    from repro.backend import get_backend, resolve_backend_name

    try:
        resolved = resolve_backend_name(requested)
    except ValueError:
        return {"requested": requested, "resolved": None, "device": None}
    try:
        backend = get_backend(resolved)
    except ImportError:
        return {"requested": requested, "resolved": resolved, "device": None}
    return {
        "requested": requested,
        "resolved": backend.name,
        "device": backend.device,
    }


def _backend_meta(scenarios) -> dict:
    """Campaign-level backend summary (one entry per distinct request)."""
    return {
        name: _backend_environment(name)
        for name in sorted({s.backend for s in scenarios})
    }


def _stage_store_dir(cache_dir: str | None) -> str | None:
    """Per-stage artifact store location implied by a flow-cache directory.

    Lives inside the cache directory (``<cache>/stages``) so ``--no-cache``
    disables both layers together and cache cleanup removes both.  The
    extra directory level keeps the two stores' fan-out globs disjoint.
    """
    if cache_dir is None:
        return None
    return str(Path(cache_dir) / "stages")


def execute_scenario(
    scenario: ScenarioSpec,
    cache_dir: str | None = None,
    standard_fit: VFResult | None = None,
    stage_store: str | None = None,
    telemetry_dir: str | None = None,
    attempt: int = 0,
) -> tuple[dict, PoleResidueModel | None]:
    """Run one scenario end-to-end; never raises.

    ``standard_fit`` optionally injects the scenario's precomputed
    standard vector fit (shared across scenarios reusing the same
    scattering data); a fit whose order does not match the scenario's
    options is ignored rather than trusted.  ``stage_store`` optionally
    points the flow pipeline at a content-addressed per-stage artifact
    store, so individual stage results (the standard fit in particular)
    are reused across scenarios and campaign re-runs.  ``telemetry_dir``
    opens a per-run telemetry session whose events stream to a sidecar
    ``events-scenario-<run_id>-<pid>.jsonl`` file in that directory and
    whose summary rides along in ``record["telemetry"]`` (merged into
    the registry record and the campaign-level metrics).  ``attempt`` is
    the dispatcher's 0-based retry counter: recorded in the run record
    and published to the fault-injection harness so attempt-pinned
    faults stay deterministic across pool respawns.  Returns
    ``(record, model)`` where ``record`` is JSON-compatible and ``model``
    is the passive weighted-cost macromodel (``None`` when the scenario
    failed).  Failed records carry a machine-readable ``error_code``
    (from the :mod:`repro.resilience.errors` taxonomy), the
    ``failed_stage`` that raised, and the full ``traceback``.
    """
    if telemetry_dir is not None:
        with telemetry_session(
            telemetry_dir,
            label="scenario",
            run_id=scenario.run_id,
            write_metrics=False,
        ) as tel:
            record, model = execute_scenario(
                scenario, cache_dir, standard_fit, stage_store,
                attempt=attempt,
            )
            record["telemetry"] = tel.snapshot()
        return record, model

    faultinject.set_attempt(attempt)
    faultinject.set_scenario(scenario.run_id)
    started = time.perf_counter()
    record: dict = {
        "run_id": scenario.run_id,
        "name": scenario.name,
        "scenario": scenario.to_dict(),
        "status": "failed",
        "cache_hit": False,
        "error": None,
        "metrics": None,
        "attempt": attempt,
        "environment": {
            "blas_thread_limit": _WORKER_BLAS_LIMIT,
            "blas_limit_method": _WORKER_BLAS_METHOD,
            "shared_standard_fit": standard_fit is not None,
            "backend": _backend_environment(scenario.backend),
        },
    }
    boundary = "testcase"
    try:
        faultinject.check("scenario.run")
        build_start = time.perf_counter()
        testcase = scenario.build_testcase()
        observe_port = scenario.resolve_observe_port(testcase)
        options = scenario.flow_options()
        build_s = time.perf_counter() - build_start
        if testcase.ingest is not None:
            record["ingest"] = testcase.ingest.to_dict()
        if (
            standard_fit is not None
            and standard_fit.model.n_poles != options.vf.n_poles
        ):
            _LOG.warning(
                "run %s: shared standard fit order mismatch, recomputing",
                record["run_id"],
            )
            standard_fit = None
            record["environment"]["shared_standard_fit"] = False

        cache = FlowCache(cache_dir) if cache_dir else None
        key = None
        if cache is not None:
            key = flow_fingerprint(
                testcase.data, testcase.termination, observe_port, options
            )
            cached = cache.get(key)
            if cached is not None:
                record.update(
                    status="ok",
                    cache_hit=True,
                    metrics=cached.record.get("metrics"),
                    accuracy_table=cached.record.get("accuracy_table"),
                    timings={
                        "testcase_s": build_s,
                        "flow_s": 0.0,
                        "total_s": time.perf_counter() - started,
                    },
                    cache_key=key,
                )
                _LOG.info("run %s: cache hit (%s)", record["run_id"], key[:12])
                return record, cached.model

        boundary = "flow"
        flow_start = time.perf_counter()
        # The flow cache above already makes whole runs resumable, so the
        # per-stage store is restricted to the one stage whose sharing
        # the campaign exploits: persisting every heavy enforcement
        # artifact per scenario would roughly double a cold campaign's
        # wall time for no additional reuse.
        result = run_flow(testcase.data, testcase.termination,
                          observe_port, options, standard_fit=standard_fit,
                          store=stage_store,
                          store_stages=("standard_fit",))
        flow_s = time.perf_counter() - flow_start
        table = accuracy_table(list(result.accuracy_rows))
        record["environment"]["shared_standard_fit"] = any(
            stage["stage"] == "standard_fit" and stage["cache_hit"]
            for stage in result.stage_provenance
        )
        obs.incr(
            "campaign.shared_fit_hits"
            if record["environment"]["shared_standard_fit"]
            else "campaign.shared_fit_misses"
        )
        record.update(
            status="ok",
            metrics=dict(result.headline_metrics),
            accuracy_table=table,
            timings={
                "testcase_s": build_s,
                "flow_s": flow_s,
                "total_s": time.perf_counter() - started,
                "stages": [dict(stage) for stage in result.stage_provenance],
                "stage_seconds": result.stage_timings(),
                "enforcement_profile": {
                    "standard_cost": result.standard_enforced.profile(),
                    "weighted_cost": result.weighted_enforced.profile(),
                },
            },
            cache_key=key,
        )
        model = result.weighted_enforced.model
        if cache is not None and key is not None:
            cache.put(key, model, record)
        _LOG.info(
            "run %s: ok in %.2fs (max relZ weighted cost %.4f)",
            record["run_id"],
            record["timings"]["total_s"],
            record["metrics"]["max_rel_impedance_weighted_cost"],
        )
        return record, model
    except Exception as exc:  # noqa: BLE001 -- isolation is the contract
        record["error"] = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
        record["error_code"] = error_code_of(exc)
        record["failed_stage"] = stage_of(exc) or boundary
        record["traceback"] = traceback.format_exc()
        record["timings"] = {"total_s": time.perf_counter() - started}
        obs.incr(f"campaign.errors.{record['error_code']}")
        _LOG.warning(
            "run %s: failed in stage %s [%s]: %s",
            record["run_id"],
            record["failed_stage"],
            record["error_code"],
            record["error"],
        )
        return record, None
    finally:
        record["duration_s"] = time.perf_counter() - started


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of one :func:`run_campaign` invocation."""

    campaign: str
    records: list[dict] = field(repr=False)
    wall_time_s: float = 0.0
    jobs: int = 1

    def _count(self, **conditions) -> int:
        return sum(
            1
            for record in self.records
            if all(record.get(k) == v for k, v in conditions.items())
        )

    @property
    def n_runs(self) -> int:
        return len(self.records)

    @property
    def n_ok(self) -> int:
        return self._count(status="ok")

    @property
    def n_failed(self) -> int:
        return self._count(status="failed")

    @property
    def n_cache_hits(self) -> int:
        return self._count(cache_hit=True)

    @property
    def n_resumed(self) -> int:
        return self._count(resumed=True)

    def summary(self) -> str:
        return (
            f"campaign {self.campaign!r}: {self.n_runs} runs, "
            f"{self.n_ok} ok, {self.n_failed} failed, "
            f"{self.n_cache_hits} cache hits, {self.n_resumed} resumed, "
            f"{self.wall_time_s:.2f}s wall with {self.jobs} job(s)"
        )


def _worker_init(log_level: int | None, blas_limit: int | None) -> None:
    global _WORKER_BLAS_LIMIT, _WORKER_BLAS_METHOD
    if log_level is not None:
        enable_console_logging(log_level)
    if blas_limit is not None:
        _WORKER_BLAS_LIMIT = blas_limit
        _WORKER_BLAS_METHOD = limit_blas_threads(blas_limit)


def _run_pool(
    todo: list[ScenarioSpec],
    policy: RetryPolicy,
    max_workers: int,
    worker_log_level: int | None,
    worker_blas: int | None,
    cache_dir: str | None,
    prefit,
    stage_store: str | None,
    telemetry_dir: str | None,
    budget_ok,
    note_retry,
    finalize,
    failed_record,
) -> None:
    """Pooled dispatch engine with deadlines, crash recovery and backoff.

    Three failure channels are distinguished:

    * an *in-worker* exception returns a ``status="failed"`` record
      (``execute_scenario`` never raises) -- retried per the policy;
    * a *worker crash* (the process died: OOM kill, segfault, injected
      ``os._exit``) surfaces as :class:`BrokenProcessPool` on every
      in-flight future.  Futures that already carry results are
      salvaged, the pool is respawned, and each lost scenario is
      requeued once more than ``max_retries`` allows for plain failures
      (``error_code="worker_crash"`` when the allowance is exhausted);
    * a *wall-clock timeout* (``policy.timeout_s``): the pool offers no
      per-task kill, so the whole pool is respawned; innocent in-flight
      scenarios resubmit at the same attempt, the expired scenario is
      requeued (``error_code="stage_timeout"`` once its allowance is
      exhausted).

    Retries re-enter through a ``waiting`` queue ordered by their
    deterministic backoff due-times, so the schedule is a pure function
    of run ids and attempt numbers.
    """
    pool = ProcessPoolExecutor(
        max_workers=max_workers,
        initializer=_worker_init,
        initargs=(worker_log_level, worker_blas),
    )
    pending: dict = {}  # future -> (scenario, attempt, deadline)
    waiting: list[tuple[float, ScenarioSpec, int]] = []  # (due, ...)
    timeout_counts: dict[str, int] = {}
    crash_counts: dict[str, int] = {}
    # Crashes and timeouts are external events, not model divergence:
    # even a no-retry policy grants them one requeue.
    requeue_allowance = max(1, policy.max_retries)

    def _submit(scenario: ScenarioSpec, attempt: int) -> None:
        deadline = (
            time.monotonic() + policy.timeout_s
            if policy.timeout_s is not None
            else None
        )
        future = pool.submit(
            execute_scenario, scenario, cache_dir, prefit(scenario),
            stage_store, telemetry_dir, attempt,
        )
        pending[future] = (scenario, attempt, deadline)

    def _respawn() -> None:
        nonlocal pool
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                proc.kill()
            except Exception:  # noqa: BLE001 -- already-dead processes
                pass
        pool.shutdown(wait=False, cancel_futures=True)
        pool = ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_worker_init,
            initargs=(worker_log_level, worker_blas),
        )

    def _requeue_or_fail(
        scenario: ScenarioSpec, attempt: int, error_code: str,
        message: str, counter: str, counts: dict[str, int],
    ) -> None:
        run_id = scenario.run_id
        counts[run_id] = counts.get(run_id, 0) + 1
        if counts[run_id] <= requeue_allowance and budget_ok():
            backoff = policy.backoff_s(run_id, attempt + 1)
            note_retry(
                run_id, attempt, error_code, message, "campaign", backoff
            )
            obs.incr(counter)
            waiting.append(
                (time.monotonic() + backoff, scenario, attempt + 1)
            )
            _LOG.warning(
                "run %s: %s; requeued with %.2fs backoff",
                run_id, message, backoff,
            )
        else:
            finalize(
                failed_record(scenario, attempt, error_code, message),
                None, attempt,
            )

    def _handle_result(
        scenario: ScenarioSpec, attempt: int, record: dict, model
    ) -> None:
        if (
            record["status"] == "failed"
            and attempt < policy.max_retries
            and budget_ok()
        ):
            backoff = policy.backoff_s(scenario.run_id, attempt + 1)
            note_retry(
                scenario.run_id, attempt, record.get("error_code"),
                record.get("error"), record.get("failed_stage"), backoff,
            )
            waiting.append(
                (time.monotonic() + backoff, scenario, attempt + 1)
            )
            _LOG.warning(
                "run %s: attempt %d failed [%s]; requeued in %.2fs",
                scenario.run_id, attempt + 1,
                record.get("error_code"), backoff,
            )
        else:
            finalize(record, model, attempt)

    try:
        for scenario in todo:
            _submit(scenario, 0)
        while pending or waiting:
            now = time.monotonic()
            due = [item for item in waiting if item[0] <= now]
            if due:
                waiting[:] = [item for item in waiting if item[0] > now]
                for _, scenario, attempt in due:
                    _submit(scenario, attempt)
            if not pending:
                # Everything is backing off; sleep until the next retry.
                next_due = min(item[0] for item in waiting)
                time.sleep(max(0.0, next_due - time.monotonic()))
                continue
            timeout = None
            candidates = [
                deadline - now
                for (_, _, deadline) in pending.values()
                if deadline is not None
            ]
            if waiting:
                candidates.append(min(item[0] for item in waiting) - now)
            if candidates:
                timeout = max(0.0, min(candidates))
            done, _ = wait(
                list(pending), timeout=timeout,
                return_when=FIRST_COMPLETED,
            )

            crash_victims: list[tuple[ScenarioSpec, int]] = []
            for future in done:
                entry = pending.pop(future, None)
                if entry is None:
                    continue
                scenario, attempt, _deadline = entry
                try:
                    record, model = future.result()
                except BrokenProcessPool:
                    crash_victims.append((scenario, attempt))
                    continue
                except Exception as exc:  # noqa: BLE001 -- dispatch error
                    record = failed_record(
                        scenario, attempt, error_code_of(exc),
                        f"dispatch failed: {exc!r}",
                    )
                    _handle_result(scenario, attempt, record, None)
                    continue
                _handle_result(scenario, attempt, record, model)
            if crash_victims:
                # The pool is broken; every other in-flight future is
                # lost too.  Salvage completed results, requeue the rest.
                for future in list(pending):
                    scenario, attempt, _deadline = pending.pop(future)
                    if future.done() and future.exception() is None:
                        record, model = future.result()
                        _handle_result(scenario, attempt, record, model)
                    else:
                        crash_victims.append((scenario, attempt))
                _respawn()
                obs.incr("campaign.worker_crashes", len(crash_victims))
                for scenario, attempt in crash_victims:
                    _requeue_or_fail(
                        scenario, attempt, "worker_crash",
                        "worker process crashed",
                        "retry.requeued_after_crash", crash_counts,
                    )
                continue

            if policy.timeout_s is None:
                continue
            now = time.monotonic()
            victims = [
                (future, scenario, attempt)
                for future, (scenario, attempt, deadline) in pending.items()
                if deadline is not None and deadline <= now
            ]
            if not victims:
                continue
            victim_futures = {future for future, _, _ in victims}
            survivors = [
                (scenario, attempt)
                for future, (scenario, attempt, _d) in pending.items()
                if future not in victim_futures
            ]
            pending.clear()
            _respawn()
            obs.incr("retry.timeouts", len(victims))
            for scenario, attempt in survivors:
                _submit(scenario, attempt)
            for _future, scenario, attempt in victims:
                _requeue_or_fail(
                    scenario, attempt, "stage_timeout",
                    f"scenario exceeded the {policy.timeout_s:g}s "
                    "wall-clock budget",
                    "retry.requeued_after_timeout", timeout_counts,
                )
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def _standard_fit_key(scenario: ScenarioSpec) -> tuple:
    """Fingerprint of a scenario's standard vector fit.

    For synthetic scenarios the scattering data depends only on the PDN
    size and the frequency grid (termination knobs perturb the loading,
    not the planes; see :func:`repro.pdn.testcase.make_variant_testcase`);
    for external scenarios it depends on the data file and the
    conditioning knobs.  The standard fit additionally depends only on
    the VF configuration.
    """
    if scenario.data_file is not None:
        return (
            "data",
            scenario.data_file,
            scenario.data_z0,
            scenario.data_dc_policy,
            scenario.data_f_min,
            scenario.data_f_max,
            scenario.data_max_points,
            scenario.data_symmetrize,
            scenario.n_poles,
            scenario.vf_kernel,
        )
    return (
        "pdn",
        scenario.size,
        scenario.n_frequencies,
        scenario.include_dc,
        scenario.n_poles,
        scenario.vf_kernel,
    )


def _nominal_testcase(scenario: ScenarioSpec):
    """The prefit group's shared base: the scenario with nominal loading.

    Termination knobs never touch the scattering data, so any member
    stripped of its perturbations materializes the group's common data
    (and, for synthetic cases, the nominal termination the per-member
    perturbations start from).
    """
    from dataclasses import replace

    return replace(
        scenario,
        decap_c_scale=1.0,
        decap_esr_scale=1.0,
        vrm_resistance=None,
        total_die_current=None,
    ).build_testcase()


def _member_termination(scenario: ScenarioSpec, base) -> object:
    """A member's termination, built from the group's base testcase."""
    from repro.pdn.testcase import perturb_termination

    if scenario.data_file is not None:
        nominal = scenario.external_termination(
            base.data.n_ports, default_z0=base.data.z0
        )
    else:
        nominal = base.termination
    return perturb_termination(
        nominal,
        decap_c_scale=scenario.decap_c_scale,
        decap_esr_scale=scenario.decap_esr_scale,
        vrm_resistance=scenario.vrm_resistance,
        total_die_current=scenario.total_die_current,
    )


def _member_observe_port(scenario: ScenarioSpec, base) -> int:
    """The observation port execute_scenario will resolve for ``scenario``.

    External test cases default an unset observe_port through
    :attr:`ScenarioSpec.external_observe_port`; resolving against the
    group's base -- which was built from a *different* member -- would
    probe the wrong port.
    """
    if scenario.data_file is not None:
        return scenario.external_observe_port
    return scenario.resolve_observe_port(base)


def _group_fully_cached(base, members: list[ScenarioSpec], cache) -> bool:
    """True when every scenario of a prefit group will be a cache hit.

    Fingerprinting reuses the group's already-built base testcase: the
    termination construction is cheap (no MNA solve, no file re-read), so
    probing the content-addressed cache costs hashing only.  A member
    whose fingerprint cannot even be computed (e.g. an invalid
    termination spec) counts as a miss: the group is prefit and the bad
    scenario fails inside execute_scenario's isolation, not here.
    """
    for scenario in members:
        try:
            fingerprint = flow_fingerprint(
                base.data,
                _member_termination(scenario, base),
                _member_observe_port(scenario, base),
                scenario.flow_options(),
            )
        except Exception:  # noqa: BLE001 -- probe must never abort the run
            return False
        if fingerprint not in cache:
            return False
    return True


def _shared_standard_fits(
    scenarios: list[ScenarioSpec],
    cache: FlowCache | None = None,
    store: ArtifactStore | None = None,
) -> dict[tuple, VFResult]:
    """One standard fit per group of scenarios sharing scattering data.

    Only groups with at least two members are prefit (a singleton gains
    nothing from precomputation), and a group whose every member is
    already served by the content-addressed flow cache is skipped -- a
    warm-cache campaign pays for fingerprint hashing, not for fits.
    Groups sharing a frequency grid and VF configuration -- e.g. several
    PDN sizes swept together, or external data files exported on one
    grid -- are fitted in a single :func:`fit_many` call, which
    amortizes grid validation, starting poles and iteration-0 basis
    assembly across them.  A group whose base cannot be built (e.g. a
    missing data file) is skipped here so the failure stays isolated to
    its own scenarios.

    ``store`` additionally publishes each prefit into the per-stage
    artifact store under :class:`~repro.api.stages.StandardFitStage`'s
    content key, so worker pipelines consume them as ordinary stage
    cache hits instead of pickled arguments.
    """
    members_of: dict[tuple, list[ScenarioSpec]] = {}
    for scenario in scenarios:
        members_of.setdefault(_standard_fit_key(scenario), []).append(scenario)
    shared = [key for key, members in members_of.items() if len(members) > 1]
    if not shared:
        return {}

    bases: dict[tuple, object] = {}
    for key in shared:
        members = members_of[key]
        try:
            base = _nominal_testcase(members[0])
        except Exception as exc:  # noqa: BLE001 -- isolate to the group
            _LOG.warning(
                "shared standard fits: cannot build group %s (%s); its "
                "scenarios will fit (and fail) individually",
                key,
                exc,
            )
            continue
        if cache is not None and _group_fully_cached(base, members, cache):
            obs.incr("campaign.prefit_cached_groups")
            _LOG.info(
                "shared standard fits: group %s fully cached, skipped", key
            )
            continue
        bases[key] = base

    # Batch groups that share a frequency grid and VF configuration into
    # one fit_many call; the grid itself is the batch discriminator, so
    # synthetic sizes and external files mix freely when grids coincide.
    batches: dict[tuple, list[tuple]] = {}
    for key, base in bases.items():
        n_poles, vf_kernel = key[-2], key[-1]
        grid_token = base.data.omega.tobytes()
        batches.setdefault((n_poles, vf_kernel, grid_token), []).append(key)

    prefits: dict[tuple, VFResult] = {}
    for (n_poles, vf_kernel, _), keys in batches.items():
        datasets = [bases[key].data for key in keys]
        obs.incr("campaign.prefit_groups", len(keys))
        with obs.span("campaign:prefit", n_groups=len(keys)):
            results = fit_many(
                datasets[0].omega,
                [data.samples for data in datasets],
                options=VFOptions(n_poles=n_poles, kernel=vf_kernel),
            )
        obs.incr("campaign.prefit_fits", len(results))
        for key, result in zip(keys, results):
            prefits[key] = result
        _LOG.info(
            "shared standard fits: %d group(s) at order %d "
            "(%d points, kernel=%s)",
            len(keys), n_poles, datasets[0].n_frequencies, vf_kernel,
        )

    if store is not None and prefits:
        stage = StandardFitStage()
        for key, fit in prefits.items():
            config = ReproConfig.from_flow_options(
                members_of[key][0].flow_options()
            )
            stage_key = stage.result_key(
                config, {"network": bases[key].data}
            )
            store.put(stage_key, {"standard_fit": fit})
        _LOG.info(
            "shared standard fits: %d published to the stage store",
            len(prefits),
        )
    return prefits


def run_campaign(
    spec: CampaignSpec | list[ScenarioSpec],
    *,
    registry: CampaignRegistry | None = None,
    cache: FlowCache | str | None = None,
    scenarios: list[ScenarioSpec] | None = None,
    jobs: int = 1,
    resume: bool = False,
    worker_log_level: int | None = None,
    name: str | None = None,
    share_fits: bool = True,
    blas_threads: int | None = None,
    telemetry_dir: str | None = None,
    retry: RetryPolicy | None = None,
    retry_failed: bool = False,
) -> CampaignResult:
    """Execute a campaign: expand, (optionally) resume, dispatch, record.

    Parameters
    ----------
    spec:
        A :class:`CampaignSpec` (expanded here) or a pre-built scenario
        list.
    scenarios:
        Optional pre-expanded (e.g. filtered) scenario subset; when given
        it is executed instead of ``spec.expand()`` while the manifest
        still records the full spec.
    registry:
        Result store; run records, model artifacts and the manifest are
        written as results arrive.  ``None`` disables persistence.
    cache:
        Content-addressed flow cache (or a path for one); ``None``
        disables caching.
    jobs:
        Worker processes; ``1`` runs serially in-process (deterministic
        ordering, easiest debugging), ``>1`` uses a process pool.
    resume:
        Skip scenarios whose run ID already has a successful record in the
        registry; their stored records are returned with ``resumed=True``.
    worker_log_level:
        When set, worker processes attach a console log handler at this
        level so per-run progress survives process boundaries.
    share_fits:
        Precompute one standard vector fit per group of scenarios that
        share scattering data and VF configuration (termination sweeps),
        instead of refitting it in every worker.
    blas_threads:
        Per-worker BLAS/OpenMP thread budget for pooled execution;
        default ``cpu_count // jobs``.  Serial runs are never capped.
    telemetry_dir:
        When set, each scenario records a telemetry session (sidecar
        ``events-*.jsonl`` per worker process, summary merged into its
        registry record) and the dispatcher writes campaign-level
        ``run_metrics.json`` + ``metrics.prom`` into this directory.
    retry:
        Retry/timeout policy (:class:`~repro.resilience.RetryPolicy`);
        ``None`` runs every scenario once with no wall-clock budget.
        Backoff delays are deterministic functions of the run id and
        attempt number, never of wall clock or RNG.
    retry_failed:
        Resume mode that re-runs *only* the scenarios whose registry
        records failed; successful records are returned as resumed and
        scenarios with no record at all are skipped.  Requires
        ``registry``.
    """
    if telemetry_dir is not None:
        with telemetry_session(
            telemetry_dir, label="campaign", kind="campaign",
            write_metrics=False,
        ) as tel:
            result = _run_campaign_impl(
                spec, registry=registry, cache=cache, scenarios=scenarios,
                jobs=jobs, resume=resume,
                worker_log_level=worker_log_level, name=name,
                share_fits=share_fits, blas_threads=blas_threads,
                telemetry_dir=telemetry_dir, retry=retry,
                retry_failed=retry_failed,
            )
            runs = [
                {
                    "run_id": record.get("run_id"),
                    "seconds": record.get("duration_s"),
                    "snapshot": record.get("telemetry"),
                }
                for record in result.records
            ]
            failures = [
                {
                    "run_id": record.get("run_id"),
                    "error_code": record.get("error_code"),
                    "failed_stage": record.get("failed_stage"),
                    "attempts": record.get("attempts", 1),
                }
                for record in result.records
                if record.get("status") == "failed"
            ]
            payload = build_campaign_metrics(
                tel, runs,
                extra={"campaign": result.campaign,
                       "wall_time_s": result.wall_time_s,
                       "failures": failures},
            )
            write_metrics_files(
                telemetry_dir, tel, kind="campaign", payload=payload
            )
        return result
    return _run_campaign_impl(
        spec, registry=registry, cache=cache, scenarios=scenarios,
        jobs=jobs, resume=resume, worker_log_level=worker_log_level,
        name=name, share_fits=share_fits, blas_threads=blas_threads,
        retry=retry, retry_failed=retry_failed,
    )


def _run_campaign_impl(
    spec: CampaignSpec | list[ScenarioSpec],
    *,
    registry: CampaignRegistry | None = None,
    cache: FlowCache | str | None = None,
    scenarios: list[ScenarioSpec] | None = None,
    jobs: int = 1,
    resume: bool = False,
    worker_log_level: int | None = None,
    name: str | None = None,
    share_fits: bool = True,
    blas_threads: int | None = None,
    telemetry_dir: str | None = None,
    retry: RetryPolicy | None = None,
    retry_failed: bool = False,
) -> CampaignResult:
    if retry_failed and registry is None:
        raise ValueError("retry_failed requires a registry")  # reprolint: disable=error-taxonomy -- API-usage validation at dispatch time, not a scenario failure
    if isinstance(spec, CampaignSpec):
        campaign_name = name or spec.name
        if scenarios is None:
            scenarios = spec.expand()
        campaign_info = spec.to_dict()
    else:
        campaign_name = name or "campaign"
        scenarios = list(spec) if scenarios is None else list(scenarios)
        campaign_info = {"name": campaign_name, "ad_hoc": True}

    # Identical specs share a run ID; keep the first occurrence so the
    # registry never sees two writers for one run directory.
    unique: list[ScenarioSpec] = []
    seen: set[str] = set()
    for scenario in scenarios:
        run_id = scenario.run_id
        if run_id in seen:
            _LOG.info("dropping duplicate scenario %s", run_id)
            continue
        seen.add(run_id)
        unique.append(scenario)
    scenarios = unique

    cache_dir = None
    if isinstance(cache, FlowCache):
        cache_dir = str(cache.root)
    elif cache is not None:
        cache_dir = str(FlowCache(cache).root)

    started = time.perf_counter()
    by_id: dict[str, dict] = {}

    todo: list[ScenarioSpec] = []
    if retry_failed:
        failed = registry.failed_run_ids()
        completed = registry.completed_run_ids()
        for scenario in scenarios:
            if scenario.run_id in failed:
                todo.append(scenario)
            elif scenario.run_id in completed:
                record = registry.load_result(scenario.run_id)
                record["resumed"] = True
                by_id[scenario.run_id] = record
                _LOG.info("run %s: resumed from registry", scenario.run_id)
            else:
                _LOG.info(
                    "run %s: no record to retry, skipped", scenario.run_id
                )
        _LOG.info("retry-failed: re-running %d failed run(s)", len(todo))
    elif resume and registry is not None:
        completed = registry.completed_run_ids()
        for scenario in scenarios:
            if scenario.run_id in completed:
                record = registry.load_result(scenario.run_id)
                record["resumed"] = True
                by_id[scenario.run_id] = record
                _LOG.info("run %s: resumed from registry", scenario.run_id)
            else:
                todo.append(scenario)
    else:
        todo = scenarios

    def _finish(record: dict, model: PoleResidueModel | None) -> None:
        by_id[record["run_id"]] = record
        if registry is not None:
            registry.record_run(record, model)
        done = len(by_id)
        _LOG.info(
            "[%d/%d] %s: %s%s",
            done,
            len(scenarios),
            record["run_id"],
            record["status"],
            " (cache hit)" if record.get("cache_hit") else "",
        )

    stage_store = _stage_store_dir(cache_dir)
    prefits: dict[tuple, VFResult] = {}
    if share_fits and len(todo) > 1:
        prefit_start = time.perf_counter()
        prefits = _shared_standard_fits(
            todo,
            FlowCache(cache_dir) if cache_dir else None,
            store=ArtifactStore(stage_store) if stage_store else None,
        )
        if prefits:
            _LOG.info(
                "shared standard fits: %d computed in %.2fs",
                len(prefits),
                time.perf_counter() - prefit_start,
            )

    def _prefit(scenario: ScenarioSpec) -> VFResult | None:
        # Store-published prefits reach workers as stage cache hits; only
        # store-less campaigns ship the fit object by value.
        if stage_store is not None:
            return None
        return prefits.get(_standard_fit_key(scenario))

    # ------------------------------------------------------------------
    # Retry bookkeeping, shared by the serial and pooled dispatchers.
    # ------------------------------------------------------------------
    policy = retry or RetryPolicy()
    budget_left = [policy.retry_budget]  # None = unlimited

    def _budget_ok() -> bool:
        return budget_left[0] is None or budget_left[0] > 0

    attempt_log: dict[str, list[dict]] = {}

    def _note_retry(
        run_id: str, attempt: int, error_code: str | None,
        error: str | None, failed_stage: str | None, backoff: float,
    ) -> None:
        attempt_log.setdefault(run_id, []).append({
            "attempt": attempt,
            "error_code": error_code,
            "error": error,
            "failed_stage": failed_stage,
            "backoff_s": backoff,
        })
        obs.incr("retry.attempts")
        if budget_left[0] is not None:
            budget_left[0] -= 1

    def _finalize(
        record: dict, model: PoleResidueModel | None, attempt: int
    ) -> None:
        record["attempts"] = attempt + 1
        log = attempt_log.get(record["run_id"])
        if log:
            record["retries"] = log
            if record["status"] == "ok":
                obs.incr("retry.recovered")
        _finish(record, model)

    def _failed_record(
        scenario: ScenarioSpec, attempt: int, error_code: str,
        message: str,
    ) -> dict:
        """Dispatcher-synthesized record for a run that never returned
        (worker crash, wall-clock timeout)."""
        return {
            "run_id": scenario.run_id,
            "name": scenario.name,
            "scenario": scenario.to_dict(),
            "status": "failed",
            "cache_hit": False,
            "error": message,
            "error_code": error_code,
            "failed_stage": "campaign",
            "metrics": None,
            "duration_s": None,
            "attempt": attempt,
        }

    active_tel = obs.active()
    if jobs <= 1 or len(todo) <= 1:
        if active_tel is not None:
            active_tel.meta.setdefault("blas", {
                "jobs": jobs, "blas_threads": None, "method": "uncapped",
            })
            active_tel.meta.setdefault("backend", _backend_meta(todo))
        for scenario in todo:
            attempt = 0
            while True:
                record, model = execute_scenario(
                    scenario, cache_dir, _prefit(scenario), stage_store,
                    telemetry_dir, attempt=attempt,
                )
                if (
                    record["status"] == "ok"
                    or attempt >= policy.max_retries
                    or not _budget_ok()
                ):
                    _finalize(record, model, attempt)
                    break
                backoff = policy.backoff_s(scenario.run_id, attempt + 1)
                _note_retry(
                    scenario.run_id, attempt, record.get("error_code"),
                    record.get("error"), record.get("failed_stage"), backoff,
                )
                _LOG.warning(
                    "run %s: attempt %d failed [%s]; retrying in %.2fs",
                    scenario.run_id, attempt + 1,
                    record.get("error_code"), backoff,
                )
                time.sleep(backoff)
                attempt += 1
    else:
        max_workers = min(jobs, len(todo))
        worker_blas = (
            blas_threads if blas_threads is not None
            else default_blas_threads(max_workers)
        )
        if active_tel is not None:
            active_tel.meta.setdefault("blas", {
                "jobs": max_workers,
                "blas_threads": worker_blas,
                "method": "worker-init",
            })
            active_tel.meta.setdefault("backend", _backend_meta(todo))
        _run_pool(
            todo, policy, max_workers, worker_log_level, worker_blas,
            cache_dir, _prefit, stage_store, telemetry_dir,
            _budget_ok, _note_retry, _finalize, _failed_record,
        )

    records = [
        by_id[scenario.run_id]
        for scenario in scenarios
        if scenario.run_id in by_id
    ]
    result = CampaignResult(
        campaign=campaign_name,
        records=records,
        wall_time_s=time.perf_counter() - started,
        jobs=jobs,
    )
    if registry is not None:
        campaign_info = dict(campaign_info)
        campaign_info.update(
            jobs=jobs,
            resume=resume,
            share_fits=share_fits,
            blas_threads=blas_threads,
            retry=policy.to_dict(),
            retry_failed=retry_failed,
        )
        registry.write_manifest(campaign_info, records)
    _LOG.info("%s", result.summary())
    return result
