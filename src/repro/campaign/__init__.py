"""repro.campaign: parallel scenario-sweep orchestration.

Turns the single-shot :class:`repro.flow.macromodel.MacromodelingFlow`
into a batch engine:

* :mod:`repro.campaign.scenario` -- declarative scenario/campaign specs
  with Cartesian grid expansion and JSON persistence;
* :mod:`repro.campaign.executor` -- process-parallel execution with
  failure isolation and deterministic run IDs;
* :mod:`repro.campaign.cache` -- content-addressed caching so re-running
  a campaign skips already-computed flows;
* :mod:`repro.campaign.registry` -- on-disk result store (manifests,
  model artifacts, query/aggregation helpers);
* :mod:`repro.campaign.report` -- campaign-level accuracy/passivity
  summary tables.
"""

from repro.campaign.cache import CachedRun, FlowCache, flow_fingerprint
from repro.campaign.executor import (
    CampaignResult,
    default_blas_threads,
    default_jobs,
    execute_scenario,
    limit_blas_threads,
    run_campaign,
)
from repro.campaign.registry import CampaignRegistry, worst_by_group
from repro.campaign.report import campaign_report, campaign_table
from repro.campaign.scenario import (
    CampaignSpec,
    ScenarioSpec,
    filter_scenarios,
    load_campaign,
    save_campaign,
    slugify,
)

__all__ = [
    "CachedRun",
    "FlowCache",
    "flow_fingerprint",
    "CampaignResult",
    "default_blas_threads",
    "default_jobs",
    "execute_scenario",
    "limit_blas_threads",
    "run_campaign",
    "CampaignRegistry",
    "worst_by_group",
    "campaign_report",
    "campaign_table",
    "CampaignSpec",
    "ScenarioSpec",
    "filter_scenarios",
    "load_campaign",
    "save_campaign",
    "slugify",
]
