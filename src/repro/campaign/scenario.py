"""Declarative scenario and campaign specifications.

A :class:`ScenarioSpec` is one fully-determined flow run: which PDN variant
to build (size, frequency grid, termination perturbation), which port to
observe, and how to configure the macromodeling flow (poles, weight mode,
enforcement budget).  A :class:`CampaignSpec` is a base scenario plus a set
of parameter axes; :meth:`CampaignSpec.expand` takes the Cartesian product
of the axes and yields one concrete scenario per grid point.

Both are plain frozen dataclasses with JSON codecs, so campaign files can
be version-controlled and scenarios shipped to worker processes by value.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import re
from dataclasses import asdict, dataclass, fields, replace
from pathlib import Path

from repro.flow.macromodel import FlowOptions
from repro.passivity.enforce import EnforcementOptions
from repro.pdn.testcase import PDNTestCase, make_variant_testcase
from repro.vectfit.options import VFOptions

_SPEC_FORMAT = "repro.campaign-spec"
_SPEC_VERSION = 1


@dataclass(frozen=True)
class ScenarioSpec:
    """One concrete run of the sensitivity-weighted flow.

    Parameters
    ----------
    name:
        Human-readable label; campaign expansion appends the axis values.
    size / n_frequencies / include_dc:
        PDN test-case family and frequency grid
        (:func:`repro.pdn.testcase.make_variant_testcase`).  Ignored when
        ``data_file`` selects an external data source.
    data_file:
        Path to an external Touchstone ``.sNp`` file; when set, the
        scenario runs on that (conditioned) data instead of a synthetic
        PDN, so sweeps can fan out over measured/solver exports with the
        same cache and registry machinery.
    termination_spec:
        Termination description of the external network: a compact inline
        spec or a JSON file path (see
        :func:`repro.ingest.termination.build_termination`); ``None``
        terminates every port with a matched ``z0`` resistor.
    data_z0 / data_dc_policy / data_f_min / data_f_max /
    data_max_points / data_symmetrize:
        Conditioning knobs for the external data
        (:class:`repro.ingest.conditioning.ConditioningOptions`).
    decap_c_scale / decap_esr_scale / vrm_resistance / total_die_current:
        Termination perturbation knobs.
    observe_port:
        Observation port; ``None`` selects the first die port.
    n_poles / weight_mode / weight_floor / refinement_rounds /
    weight_model_order / enforcement_max_iterations:
        Flow configuration (:class:`repro.flow.macromodel.FlowOptions`).
    checker_strategy / checker_exact_every:
        Passivity-checker strategy of the enforcement loop: ``"fast"``
        (sampling-mode intermediate iterations, exact Hamiltonian
        certification) or ``"exact"`` (Hamiltonian test every iteration);
        see :class:`repro.passivity.engine.CheckerOptions`.
    vf_kernel:
        Vector-fitting linear-algebra kernel: ``"batched"`` (stacked
        batched LAPACK, default) or ``"reference"`` (per-column loops);
        see :class:`repro.vectfit.options.VFOptions`.
    backend:
        Array backend for the dense kernels of this scenario ("auto",
        "numpy", "cupy", "jax" or "array_api_strict"); threaded into
        both the VF and enforcement options (see :mod:`repro.backend`).
    """

    name: str = "scenario"
    size: str = "small"
    n_frequencies: int = 201
    include_dc: bool = True
    data_file: str | None = None
    termination_spec: str | None = None
    data_z0: float | None = None
    data_dc_policy: str = "keep"
    data_f_min: float | None = None
    data_f_max: float | None = None
    data_max_points: int | None = None
    data_symmetrize: str = "auto"
    decap_c_scale: float = 1.0
    decap_esr_scale: float = 1.0
    vrm_resistance: float | None = None
    total_die_current: float | None = None
    observe_port: int | None = None
    n_poles: int = 12
    weight_mode: str = "relative"
    weight_floor: float = 0.01
    refinement_rounds: int = 3
    weight_model_order: int = 8
    enforcement_max_iterations: int = 30
    checker_strategy: str = "fast"
    checker_exact_every: int = 5
    vf_kernel: str = "batched"
    backend: str = "auto"

    def _stray_external_fields(self) -> list[str]:
        """External-only knobs set although no ``data_file`` is.

        Checked when the synthetic path is *built* (not at construction):
        a campaign base legitimately carries ``termination_spec`` or
        conditioning knobs while ``data_file`` arrives via a sweep axis.
        """
        return [
            field_name
            for field_name, value, default in (
                ("termination_spec", self.termination_spec, None),
                ("data_z0", self.data_z0, None),
                ("data_dc_policy", self.data_dc_policy, "keep"),
                ("data_f_min", self.data_f_min, None),
                ("data_f_max", self.data_f_max, None),
                ("data_max_points", self.data_max_points, None),
                ("data_symmetrize", self.data_symmetrize, "auto"),
            )
            if value != default
        ]

    # ------------------------------------------------------------------
    # Derived objects
    # ------------------------------------------------------------------
    def flow_options(self) -> FlowOptions:
        """The flow configuration this scenario describes."""
        return FlowOptions(
            vf=VFOptions(
                n_poles=self.n_poles,
                kernel=self.vf_kernel,
                backend=self.backend,
            ),
            weight_mode=self.weight_mode,
            weight_floor=self.weight_floor,
            refinement_rounds=self.refinement_rounds,
            weight_model_order=self.weight_model_order,
            enforcement=EnforcementOptions(
                max_iterations=self.enforcement_max_iterations,
                checker_strategy=self.checker_strategy,
                exact_every=self.checker_exact_every,
                backend=self.backend,
            ),
        )

    def conditioning_options(self):
        """Conditioning configuration for an external ``data_file`` source."""
        from repro.ingest.conditioning import ConditioningOptions

        return ConditioningOptions(
            z0=self.data_z0,
            dc_policy=self.data_dc_policy,
            f_min=self.data_f_min,
            f_max=self.data_f_max,
            max_points=self.data_max_points,
            symmetrize=self.data_symmetrize,
        )

    @property
    def external_observe_port(self) -> int:
        """Effective observation port of an external data source.

        External test cases have no "first die port" to fall back on, so
        an unset ``observe_port`` defaults to 0.  The executor's cache
        probes rely on this single definition matching what
        :meth:`build_testcase` resolves.
        """
        return self.observe_port if self.observe_port is not None else 0

    def external_termination(self, n_ports: int, default_z0: float = 50.0):
        """Unperturbed termination of an external network (spec or default).

        ``default_z0`` is the conditioned data's reference resistance, so
        the spec-less default really is a *matched* resistive load.
        """
        from repro.ingest.termination import build_termination

        return build_termination(
            self.termination_spec,
            n_ports,
            observe_port=self.external_observe_port,
            default_z0=default_z0,
        )

    def build_testcase(self) -> PDNTestCase:
        """Materialize the data source (deterministic for a given spec)."""
        if self.data_file is not None:
            return self._build_external_testcase()
        stray = self._stray_external_fields()
        if stray:
            raise ValueError(
                f"{sorted(stray)} require data_file to be set "
                "(they describe an external data source)"
            )
        return make_variant_testcase(
            self.size,
            n_frequencies=self.n_frequencies,
            include_dc=self.include_dc,
            decap_c_scale=self.decap_c_scale,
            decap_esr_scale=self.decap_esr_scale,
            vrm_resistance=self.vrm_resistance,
            total_die_current=self.total_die_current,
        )

    def _build_external_testcase(self) -> PDNTestCase:
        from repro.ingest.conditioning import load_network
        from repro.pdn.testcase import perturb_termination

        data, report = load_network(self.data_file, self.conditioning_options())
        termination = perturb_termination(
            self.external_termination(data.n_ports, default_z0=data.z0),
            decap_c_scale=self.decap_c_scale,
            decap_esr_scale=self.decap_esr_scale,
            vrm_resistance=self.vrm_resistance,
            total_die_current=self.total_die_current,
        )
        return PDNTestCase(
            name=Path(self.data_file).name,
            geometry=None,
            circuit=None,
            data=data,
            termination=termination,
            observe_port=self.external_observe_port,
            ingest=report,
        )

    def resolve_observe_port(self, testcase: PDNTestCase) -> int:
        return (
            testcase.observe_port
            if self.observe_port is None
            else self.observe_port
        )

    # ------------------------------------------------------------------
    # Identity and serialization
    # ------------------------------------------------------------------
    @property
    def run_id(self) -> str:
        """Deterministic identifier: slugified name + content digest.

        Two specs with identical parameters always map to the same run ID,
        which is what makes registry-level resume safe across processes and
        sessions.
        """
        digest = hashlib.sha256(
            json.dumps(self.to_dict(), sort_keys=True).encode()
        ).hexdigest()
        return f"{slugify(self.name)[:60]}-{digest[:10]}"

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown scenario parameters: {sorted(unknown)}"
            )
        return cls(**payload)


def slugify(name: str) -> str:
    """Filesystem/ID-safe slug of a campaign or scenario name.

    Used both for run IDs and for the registry directory derived from a
    user-supplied campaign name, so a name like ``"../evil"`` can never
    escape the chosen output directory.
    """
    slug = re.sub(r"[^a-zA-Z0-9._-]+", "-", name).strip("-")
    if not slug or set(slug) <= {"."}:
        return "run"
    return slug


def _axis_tag(key: str, value) -> str:
    return f"{key}={value}"


@dataclass(frozen=True)
class CampaignSpec:
    """A base scenario plus parameter axes to sweep.

    ``axes`` maps :class:`ScenarioSpec` field names to lists of values; the
    expansion is the Cartesian product in sorted-key order, so the scenario
    list is deterministic regardless of dict insertion order.  An axis with
    an empty value list yields an empty campaign (useful as an explicit
    "disabled" state in generated specs).
    """

    name: str = "campaign"
    base: ScenarioSpec = ScenarioSpec()
    axes: tuple[tuple[str, tuple], ...] = ()

    @classmethod
    def from_axes(
        cls,
        name: str,
        base: ScenarioSpec | None = None,
        axes: dict | None = None,
    ) -> "CampaignSpec":
        """Build a spec from a plain ``{field: [values...]}`` mapping."""
        base = base or ScenarioSpec()
        axes = axes or {}
        known = {f.name for f in fields(ScenarioSpec)}
        unknown = set(axes) - known
        if unknown:
            raise ValueError(f"unknown sweep axes: {sorted(unknown)}")
        if "name" in axes:
            raise ValueError("'name' cannot be a sweep axis")
        normalized = tuple(
            (key, tuple(axes[key])) for key in sorted(axes)
        )
        return cls(name=name, base=base, axes=normalized)

    def expand(self) -> list[ScenarioSpec]:
        """All concrete scenarios of the sweep (empty axes -> [base])."""
        if not self.axes:
            return [self.base]
        keys = [key for key, _ in self.axes]
        value_lists = [values for _, values in self.axes]
        scenarios = []
        for combo in itertools.product(*value_lists):
            overrides = dict(zip(keys, combo))
            tag = ",".join(_axis_tag(k, v) for k, v in overrides.items())
            scenarios.append(
                replace(self.base, name=f"{self.base.name}[{tag}]", **overrides)
            )
        return scenarios

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format": _SPEC_FORMAT,
            "version": _SPEC_VERSION,
            "name": self.name,
            "base": self.base.to_dict(),
            "axes": {key: list(values) for key, values in self.axes},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignSpec":
        if payload.get("format", _SPEC_FORMAT) != _SPEC_FORMAT:
            raise ValueError(f"not a {_SPEC_FORMAT} document")
        if payload.get("version", _SPEC_VERSION) != _SPEC_VERSION:
            raise ValueError(
                f"unsupported campaign-spec version {payload.get('version')!r}"
            )
        base_payload = dict(payload.get("base", {}))
        base_payload.setdefault("name", payload.get("name", "campaign"))
        return cls.from_axes(
            name=payload.get("name", "campaign"),
            base=ScenarioSpec.from_dict(base_payload),
            axes=payload.get("axes", {}),
        )


def save_campaign(spec: CampaignSpec, path: str | Path) -> None:
    """Write a campaign spec as a JSON file."""
    Path(path).write_text(
        json.dumps(spec.to_dict(), indent=1), encoding="utf-8"
    )


def load_campaign(path: str | Path) -> CampaignSpec:
    """Read a campaign spec written by :func:`save_campaign` (or by hand)."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        return CampaignSpec.from_dict(payload)
    except ValueError as exc:  # includes json.JSONDecodeError
        raise ValueError(f"{path}: {exc}") from exc


def filter_scenarios(
    scenarios: list[ScenarioSpec], pattern: str | None
) -> list[ScenarioSpec]:
    """Subset scenarios by name: glob when the pattern has wildcards,
    substring match otherwise.

    Only ``*`` and ``?`` trigger glob matching: expanded scenario names
    always contain ``[axis=value]`` brackets, so treating ``[`` as a glob
    character would make an exact copied name match nothing.
    """
    if not pattern:
        return list(scenarios)
    if "*" in pattern or "?" in pattern:
        from fnmatch import fnmatchcase

        # Escape '[' so bracketed axis tags in names match literally.
        glob = pattern.replace("[", "[[]")
        return [s for s in scenarios if fnmatchcase(s.name, glob)]
    return [s for s in scenarios if pattern in s.name]
