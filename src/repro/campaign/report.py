"""Campaign-level reporting.

Renders the per-run accuracy/passivity table and the aggregate views a
power-integrity engineer actually asks for ("which weight mode has the
worst loaded-impedance error anywhere in the sweep?"), reusing the same
metric definitions as the single-run flow report in
:mod:`repro.flow.metrics`.
"""

from __future__ import annotations

from repro.campaign.registry import worst_by_group


def _fmt(value, width: int, precision: int = 4) -> str:
    if value is None:
        return "-".rjust(width)
    if isinstance(value, bool):
        return str(value).rjust(width)
    return f"{value:{width}.{precision}f}"


def campaign_table(records: list[dict]) -> str:
    """One row per run: identity, headline metrics, timing, cache state."""
    header = (
        f"{'run':<42s} {'status':<7s} {'mode':<9s} {'poles':>5s} "
        f"{'relZ std':>9s} {'relZ wtd':>9s} {'passive':>7s} "
        f"{'time[s]':>8s} {'cache':>6s}"
    )
    lines = [header, "-" * len(header)]
    for record in records:
        scenario = record.get("scenario") or {}
        metrics = record.get("metrics") or {}
        name = record.get("name") or record.get("run_id", "?")
        if len(name) > 42:
            name = name[:39] + "..."
        duration = record.get("duration_s")
        flags = []
        if record.get("resumed"):
            flags.append("resume")
        elif record.get("cache_hit"):
            flags.append("hit")
        lines.append(
            f"{name:<42s} {record.get('status', '?'):<7s} "
            f"{scenario.get('weight_mode', '-'):<9s} "
            f"{scenario.get('n_poles', '-')!s:>5s} "
            f"{_fmt(metrics.get('max_rel_impedance_standard_cost'), 9)} "
            f"{_fmt(metrics.get('max_rel_impedance_weighted_cost'), 9)} "
            f"{str(bool(metrics.get('passive_weighted_cost'))):>7s} "
            f"{_fmt(duration, 8, 2)} "
            f"{','.join(flags) or '-':>6s}"
        )
    return "\n".join(lines)


def worst_case_summary(
    records: list[dict],
    group_param: str = "weight_mode",
    metric: str = "max_rel_impedance_weighted_cost",
) -> str:
    """Aggregate table: worst value of a metric per scenario-parameter
    group (default: worst max-relative-Z error per weight mode)."""
    worst = worst_by_group(records, group_param, metric)
    if not worst:
        return f"no successful runs with metric {metric!r}"
    lines = [f"worst {metric} by {group_param}:"]
    for group in sorted(worst, key=str):
        entry = worst[group]
        lines.append(
            f"  {str(group):<12s} {entry['value']:10.4f}  ({entry['run_id']})"
        )
    return "\n".join(lines)


def failure_summary(records: list[dict]) -> str:
    """One line per failed run (empty string when everything passed)."""
    failed = [r for r in records if r.get("status") == "failed"]
    if not failed:
        return ""
    lines = [f"{len(failed)} failed run(s):"]
    for record in failed:
        code = record.get("error_code") or "exception"
        stage = record.get("failed_stage") or "?"
        attempts = record.get("attempts", 1)
        tries = f", {attempts} attempts" if attempts and attempts > 1 else ""
        lines.append(
            f"  {record.get('run_id', '?')} [{code} @ {stage}{tries}]: "
            f"{record.get('error')}"
        )
    return "\n".join(lines)


def campaign_report(result) -> str:
    """Full human-readable report of a campaign run.

    ``result`` is a :class:`repro.campaign.executor.CampaignResult`.
    """
    sections = [
        result.summary(),
        "",
        campaign_table(result.records),
        "",
        worst_case_summary(result.records),
        worst_case_summary(
            result.records, metric="low_band_rel_impedance_weighted_cost"
        ),
    ]
    failures = failure_summary(result.records)
    if failures:
        sections += ["", failures]
    return "\n".join(sections)
