"""repro: sensitivity-weighted passivity enforcement for PDN macromodels.

Reproduction of A. Ubolli, S. Grivet-Talocia, M. Bandinu, A. Chinea,
"Sensitivity-based weighting for passivity enforcement of linear
macromodels in power integrity applications", DATE 2014.

Public API tour
---------------
* :mod:`repro.pdn` -- synthetic PDN generator (``make_paper_testcase``)
  and termination networks.
* :mod:`repro.vectfit` -- weighted Vector Fitting and Magnitude VF.
* :mod:`repro.sensitivity` -- target impedance (eq. 2), first-order
  sensitivity (eq. 5), sensitivity weight models (eq. 17) and the weighted
  perturbation norm (eqs. 18-21).
* :mod:`repro.passivity` -- Hamiltonian passivity check and iterative
  enforcement (eqs. 8-10).
* :mod:`repro.api` -- the composable pipeline engine: typed stages, the
  content-addressed artifact store, the unified :class:`ReproConfig` and
  the event-observer hooks.  Every execution surface (``run_flow``, the
  CLI, the campaign executor) runs on it.
* :mod:`repro.flow` -- the end-to-end pipeline (``MacromodelingFlow``).
* :mod:`repro.campaign` -- parallel scenario-sweep orchestration with
  content-addressed caching and an on-disk result registry.
* :mod:`repro.ingest` -- external Touchstone data conditioning and
  generic termination construction for arbitrary multiport networks.
* :mod:`repro.resilience` -- typed error taxonomy, campaign retry
  policy, NaN/Inf stage guards, and the deterministic fault-injection
  harness behind the solver fallback ladders.
* :mod:`repro.timedomain` -- transient droop simulation of the loaded
  macromodel.
"""

from repro.api import (
    ArtifactStore,
    Pipeline,
    PipelineObserver,
    ReproConfig,
    standard_pipeline,
)
from repro.campaign import (
    CampaignSpec,
    FlowCache,
    ScenarioSpec,
    run_campaign,
)
from repro.flow.macromodel import (
    FlowOptions,
    FlowResult,
    MacromodelingFlow,
    run_flow,
)
from repro.ingest import (
    ConditioningOptions,
    IngestReport,
    build_termination,
    condition_network,
    load_network,
)
from repro.passivity.check import check_passivity
from repro.passivity.enforce import EnforcementOptions, enforce_passivity
from repro.passivity.engine import CheckerOptions, PassivityChecker
from repro.pdn.termination import TerminationNetwork
from repro.resilience import ReproError, RetryPolicy
from repro.pdn.testcase import (
    PDNTestCase,
    make_paper_testcase,
    make_variant_testcase,
    perturb_termination,
)
from repro.sensitivity.firstorder import (
    sensitivity_analytic,
    sensitivity_monte_carlo,
)
from repro.sensitivity.zpdn import target_impedance, target_impedance_of_model
from repro.sparams.network import NetworkData
from repro.statespace.poleresidue import PoleResidueModel
from repro.vectfit.core import vector_fit
from repro.vectfit.magnitude import fit_magnitude
from repro.vectfit.options import VFOptions

__version__ = "0.1.0"

__all__ = [
    "ArtifactStore",
    "Pipeline",
    "PipelineObserver",
    "ReproConfig",
    "standard_pipeline",
    "CampaignSpec",
    "FlowCache",
    "ScenarioSpec",
    "run_campaign",
    "FlowOptions",
    "FlowResult",
    "MacromodelingFlow",
    "run_flow",
    "ConditioningOptions",
    "IngestReport",
    "build_termination",
    "condition_network",
    "load_network",
    "check_passivity",
    "CheckerOptions",
    "PassivityChecker",
    "EnforcementOptions",
    "enforce_passivity",
    "TerminationNetwork",
    "ReproError",
    "RetryPolicy",
    "PDNTestCase",
    "make_paper_testcase",
    "make_variant_testcase",
    "perturb_termination",
    "sensitivity_analytic",
    "sensitivity_monte_carlo",
    "target_impedance",
    "target_impedance_of_model",
    "NetworkData",
    "PoleResidueModel",
    "vector_fit",
    "fit_magnitude",
    "VFOptions",
    "__version__",
]
