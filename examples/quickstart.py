"""Quickstart: the full sensitivity-weighted macromodeling flow in ~20 lines.

Builds the canonical synthetic PDN test case (the stand-in for the paper's
Intel package), runs the complete pipeline -- standard fit, sensitivity
analysis, weighted fit, passivity enforcement with both costs -- and prints
the accuracy summary that reproduces the paper's headline comparison.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import MacromodelingFlow, make_paper_testcase
from repro.flow.metrics import (
    ModelAccuracyRow,
    impedance_error_report,
    max_relative_impedance_error,
    max_scattering_error,
    rms_scattering_error,
)
from repro.passivity.check import check_passivity


def main():
    testcase = make_paper_testcase()
    print(testcase.summary())
    print()

    flow = MacromodelingFlow()
    result = flow.run(testcase.data, testcase.termination, testcase.observe_port)

    omega = testcase.data.omega
    low_band = (0.0, 2 * np.pi * 1e6)
    rows = []
    for label, model in [
        ("standard VF", result.standard_fit.model),
        ("weighted VF (non-passive)", result.weighted_fit.model),
        ("passive, standard cost", result.standard_enforced.model),
        ("passive, weighted cost", result.weighted_enforced.model),
    ]:
        rows.append(
            ModelAccuracyRow(
                label=label,
                rms_scattering=rms_scattering_error(
                    model, omega, testcase.data.samples
                ),
                max_scattering=max_scattering_error(
                    model, omega, testcase.data.samples
                ),
                max_rel_impedance=max_relative_impedance_error(
                    model, omega, result.reference_impedance,
                    testcase.termination, testcase.observe_port,
                ),
                low_band_rel_impedance=max_relative_impedance_error(
                    model, omega, result.reference_impedance,
                    testcase.termination, testcase.observe_port, band=low_band,
                ),
                is_passive=check_passivity(model).is_passive,
            )
        )
    print(impedance_error_report(rows))
    print()
    print(
        "Enforcement iterations: standard cost "
        f"{result.standard_enforced.iterations}, weighted cost "
        f"{result.weighted_enforced.iterations} (paper: 9)"
    )
    print(
        "The paper's point: the two passive models are equally good in the\n"
        "scattering columns, but only the sensitivity-weighted one keeps\n"
        "the loaded PDN impedance accurate (low-f relZ column)."
    )


if __name__ == "__main__":
    main()
