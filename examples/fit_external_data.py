"""Run the sensitivity-weighted flow on an external Touchstone file.

Demonstrates the repro.ingest external-data path end-to-end without any
synthetic PDN involved:

1. load + condition a checked-in 2-port solver export
   (``examples/data/coupled_rlc.s2p``): grid repair, band selection,
   reciprocity symmetrization, passivity pre-check;
2. build a generic termination from a compact inline spec;
3. run the full paper pipeline (sensitivity, weighted fit, both
   passivity enforcements);
4. sweep termination variants over the same file as a campaign, with
   content-addressed caching.

Equivalent CLI::

    repro fit examples/data/coupled_rlc.s2p \
        --termination "0=r(1);1=rlc(r=0.2,c=1e-6)" --observe-port 1

Run from the repository root with ``PYTHONPATH=src``.
"""

from pathlib import Path

import numpy as np

from repro.campaign import CampaignSpec, ScenarioSpec, run_campaign
from repro.flow.macromodel import FlowOptions, run_flow
from repro.ingest import ConditioningOptions, build_termination, load_network
from repro.vectfit.options import VFOptions

DATA = Path(__file__).resolve().parent / "data" / "coupled_rlc.s2p"


def main() -> None:
    # -- 1. ingest ------------------------------------------------------
    data, report = load_network(
        DATA, ConditioningOptions(f_min=1e4, max_points=60)
    )
    print(report.summary())
    print()

    # -- 2. generic termination ----------------------------------------
    # Port 0: 1 ohm source-side load; port 1: series RC block drawing the
    # nominal 1 A excitation (set automatically at the observe port).
    termination = build_termination(
        "0=r(1);1=rlc(r=0.2,c=1e-6)", data.n_ports, observe_port=1
    )
    for line in termination.describe():
        print(line)
    print()

    # -- 3. full sensitivity-weighted flow -----------------------------
    result = run_flow(
        data,
        termination,
        observe_port=1,
        options=FlowOptions(vf=VFOptions(n_poles=8)),
    )
    print(
        f"weighted fit rms error    : {result.weighted_fit.rms_error:.3e}\n"
        f"worst sigma before enforce: "
        f"{result.pre_enforcement_report.worst_sigma:.6f}\n"
        f"enforced model passive    : "
        f"{result.weighted_enforced.report_after.is_passive}\n"
        f"max |Z_target|            : "
        f"{np.max(np.abs(result.reference_impedance)):.4f} ohm\n"
    )

    # -- 4. campaign over the same file --------------------------------
    spec = CampaignSpec.from_axes(
        "external-termination-sweep",
        base=ScenarioSpec(
            name="coupled-rlc",
            data_file=str(DATA),
            termination_spec="0=r(1);1=rlc(r=0.2,c=1e-6)",
            observe_port=1,
            data_max_points=40,
            n_poles=6,
            refinement_rounds=1,
            enforcement_max_iterations=10,
        ),
        axes={
            "termination_spec": [
                "0=r(1);1=rlc(r=0.2,c=1e-6)",
                "0=r(1);1=rlc(r=0.5,c=1e-6)",
                "*=r(50)",
            ]
        },
    )
    campaign = run_campaign(spec, jobs=1)
    print(campaign.summary())
    for record in campaign.records:
        metrics = record["metrics"] or {}
        print(
            f"  {record['name']}: max relZ (weighted cost) = "
            f"{metrics.get('max_rel_impedance_weighted_cost', float('nan')):.2e}"
        )


if __name__ == "__main__":
    main()
