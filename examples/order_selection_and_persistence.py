"""Extensions tour: automatic order selection, DC-exact fitting, and
model persistence.

Shows the workflow pieces a downstream user needs around the core paper
algorithm: choosing the model order automatically instead of by expertise,
pinning the DC point exactly (critical for IR-drop sign-off), and saving /
reloading the macromodel as JSON.

Run:  python examples/order_selection_and_persistence.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import make_paper_testcase
from repro.sensitivity.zpdn import target_impedance, target_impedance_of_model
from repro.statespace.serialization import load_model, save_model
from repro.vectfit import VFOptions, select_model_order, vector_fit


def main():
    testcase = make_paper_testcase()
    data = testcase.data

    # --- automatic model-order selection -------------------------------
    sweep = select_model_order(
        data.omega, data.samples, orders=[6, 8, 10, 12, 14, 16],
        target_rms=1.2e-3,
    )
    print("Order sweep:")
    for cand in sweep.candidates:
        marker = " <-- selected" if cand.n_poles == sweep.selected_order else ""
        print(f"  n = {cand.n_poles:2d}: rms {cand.rms_error:.3e}{marker}")

    # --- DC-exact fitting ----------------------------------------------
    zref = target_impedance(
        data.samples, data.omega, testcase.termination, testcase.observe_port
    )
    plain = vector_fit(data.omega, data.samples, options=VFOptions(n_poles=12))
    exact = vector_fit(
        data.omega, data.samples, options=VFOptions(n_poles=12, dc_exact=True)
    )
    for label, fit in [("plain", plain), ("dc_exact", exact)]:
        z = target_impedance_of_model(
            fit.model, data.omega, testcase.termination, testcase.observe_port
        )
        rel_dc = abs(z[0] - zref[0]) / abs(zref[0])
        print(f"\n{label}: DC loaded-impedance error {rel_dc:.2e} "
              f"(rms scattering error {fit.rms_error:.2e})")

    # --- persistence -----------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "model.json"
        save_model(exact.model, path)
        reloaded = load_model(path)
        omega_check = data.omega[::20]
        match = np.allclose(
            reloaded.frequency_response(omega_check),
            exact.model.frequency_response(omega_check),
        )
        print(f"\nModel saved to JSON ({path.stat().st_size} bytes) and "
              f"reloaded; responses identical: {match}")

    print("\nCLI equivalents:")
    print("  python -m repro testcase --output-dir case/")
    print("  python -m repro fit case/pdn.s9p --poles 12 --dc-exact")
    print("  python -m repro flow case/pdn.s9p --termination "
          "case/termination.json --observe-port 0")


if __name__ == "__main__":
    main()
