"""Telemetry tour: record, inspect and render a flow run's event stream.

Walks the observability surface end to end on the paper's small PDN case:

1. run the standard five-stage pipeline inside a ``telemetry_session`` so
   every solver iteration, stage span and cache lookup is recorded;
2. poke at the live session object -- counters, hierarchical span totals,
   raw events -- and pull the per-iteration convergence trajectories the
   way ``run_metrics.json`` does;
3. attach an :class:`~repro.api.EventObserver` to see the same stage
   events as structured dicts while the pipeline runs;
4. render the recorded directory with the same code path as the
   ``repro trace`` subcommand.

Equivalent CLI::

    repro flow --size small --telemetry telemetry_tour_out
    repro trace telemetry_tour_out

Run:  python examples/telemetry_tour.py        (headless, a few seconds)
"""

import shutil
from pathlib import Path

from repro.api import EventObserver, Pipeline, ReproConfig, standard_stages
from repro.obs import render_trace, telemetry_session
from repro.obs.metrics import convergence_from_events
from repro.pdn.testcase import make_paper_testcase


class StagePrinter(EventObserver):
    """Observer view: the pipeline's stage events as structured dicts."""

    def on_event(self, event):
        if event["event"] == "stage.finish":
            print(
                f"  [observer] {event['stage']:<14} {event['status']:<9}"
                f" {event['seconds']:.3f}s"
            )


def main():
    out = Path("telemetry_tour_out")
    if out.exists():
        shutil.rmtree(out)

    case = make_paper_testcase(size="small", n_frequencies=201)
    seed = {
        "network": case.data,
        "termination": case.termination,
        "observe_port": case.observe_port,
    }

    # 1 + 3 -- record a session while an observer watches the same stream.
    print("== running the pipeline under a telemetry session ==")
    with telemetry_session(out, label="tour", kind="flow") as telemetry:
        pipeline = Pipeline(standard_stages(), observers=[StagePrinter()])
        pipeline.run(ReproConfig(), seed)

    # 2 -- the session object after the run.
    print("\n== counters ==")
    for name, value in sorted(telemetry.counters.items()):
        print(f"  {name:<32} {value}")

    print("\n== span totals (hierarchical paths) ==")
    for path, total in sorted(
        telemetry.span_totals.items(), key=lambda kv: -kv[1]["seconds"]
    ):
        print(f"  {path:<52} {total['seconds']:8.3f}s  x{total['count']}")

    convergence = convergence_from_events(telemetry.events)
    print("\n== vector-fitting pole relocation (per fit) ==")
    for key, rows in sorted(convergence["vf"].items()):
        last = rows[-1]
        print(
            f"  fit {key}: {len(rows)} iterations, final pole change "
            f"{last['pole_change']:.3e}, converged={last['converged']}"
        )
    print("\n== passivity enforcement (worst sigma trajectory) ==")
    for cost, rows in sorted(convergence["enforcement"].items()):
        sigmas = " -> ".join(f"{row['worst_sigma']:.6f}" for row in rows)
        print(f"  cost {cost}: {sigmas}")

    # 4 -- the files on disk and the trace renderer over them.
    print("\n== recorded files ==")
    for path in sorted(out.iterdir()):
        print(f"  {path}")

    print("\n== repro trace ==")
    print(render_trace(out))


if __name__ == "__main__":
    main()
