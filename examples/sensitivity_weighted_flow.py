"""Step-by-step walkthrough of the paper's algorithm on the canonical
test case, with every intermediate quantity exposed and exported.

Stages (paper section in parentheses):
  1. tabulated scattering data (Sec. II)      -> exported as Touchstone
  2. standard vector fit, eq. (4)
  3. first-order sensitivity Xi_k, eq. (5)
  4. weighted vector fit, eq. (6)
  5. sensitivity macromodel via Magnitude VF, eq. (17)
  6. passivity check (Hamiltonian), Sec. III
  7. weighted passivity enforcement, eqs. (8)-(9) + (18)-(21)

Run:  python examples/sensitivity_weighted_flow.py [output_dir]
"""

import sys
from pathlib import Path

import numpy as np

from repro import MacromodelingFlow, make_paper_testcase
from repro.passivity.check import check_passivity
from repro.sensitivity.zpdn import target_impedance_of_model
from repro.sparams.touchstone import write_touchstone


def main(output_dir="flow_output"):
    out = Path(output_dir)
    out.mkdir(exist_ok=True)
    testcase = make_paper_testcase()
    data = testcase.data

    # Stage 1: the raw data a field solver would hand us.
    write_touchstone(data, out / "pdn_raw.s9p")
    print(f"[1] scattering data: {data.n_ports} ports, "
          f"{data.n_frequencies} points -> {out / 'pdn_raw.s9p'}")

    flow = MacromodelingFlow()

    # Stage 2: standard VF.
    standard = flow.fit_standard(data)
    print(f"[2] standard VF: rms error {standard.rms_error:.2e}, "
          f"{standard.iterations} iterations, stable={standard.model.is_stable()}")

    # Stage 3: sensitivity.
    xi = flow.compute_sensitivity(data, testcase.termination, testcase.observe_port)
    from repro.sensitivity.zpdn import target_impedance

    zref = target_impedance(
        data.samples, data.omega, testcase.termination, testcase.observe_port
    )
    print(f"[3] sensitivity Xi: range {xi.min():.3g} .. {xi.max():.3g}; "
          f"relative Xi/|Z| spans "
          f"{(xi / np.abs(zref)).max() / (xi / np.abs(zref)).min():.0f}x")

    # Stage 4: weighted VF with refinement.
    base = flow.base_weights(data, xi, zref)
    weighted, final_weights = flow.fit_weighted(
        data, testcase.termination, testcase.observe_port, base, zref
    )
    print(f"[4] weighted VF: rms error {weighted.rms_error:.2e} "
          f"(weights floored at {flow.options.weight_floor})")

    # Stage 5: rational sensitivity model.
    weight_model = flow.build_weight_model(data, base)
    print(f"[5] sensitivity macromodel: order {weight_model.model.n_states}, "
          f"fit {weight_model.fit.rms_db_error:.2f} dB rms")

    # Stage 6: passivity check.
    report = check_passivity(weighted.model)
    print(f"[6] passivity check: worst sigma {report.worst_sigma:.6f} "
          f"in {len(report.bands)} violation band(s)")
    for band in report.bands[:5]:
        print(f"      {band}")

    # Stage 7: weighted enforcement.
    from repro.passivity.enforce import enforce_passivity
    from repro.sensitivity.weighted_norm import sensitivity_weighted_cost

    cost = sensitivity_weighted_cost(weighted.model, weight_model.model)
    enforced = enforce_passivity(weighted.model, cost)
    print(f"[7] weighted enforcement: passive={enforced.converged} "
          f"after {enforced.iterations} iterations")

    # Export the final passive macromodel responses and target impedance.
    final = enforced.model
    z_final = target_impedance_of_model(
        final, data.omega, testcase.termination, testcase.observe_port
    )
    table = np.column_stack(
        [data.frequencies, np.abs(zref), np.abs(z_final), xi, final_weights]
    )
    np.savetxt(
        out / "flow_series.csv",
        table,
        delimiter=",",
        header="frequency_hz,z_nominal_ohm,z_passive_model_ohm,xi,final_weight",
        comments="",
    )
    rel = np.abs(z_final - zref) / np.abs(zref)
    print(f"\nFinal passive model: max relative impedance error {rel.max():.3f} "
          f"({rel[data.frequencies < 1e6].max():.3f} below 1 MHz)")
    print(f"Series written to {out / 'flow_series.csv'}")


if __name__ == "__main__":
    main(*sys.argv[1:2])
