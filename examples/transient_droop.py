"""Transient power-integrity verification: voltage droop at a die port.

The end purpose of the paper's flow: embed the passive macromodel in its
termination network and run a time-domain simulation of the supply droop
caused by switching currents.  Compares the droop predicted by the
sensitivity-weighted passive model against the standard-enforced one --
the low-frequency impedance error of the latter shows up directly as a
wrong settled droop level.

Run:  python examples/transient_droop.py
"""


from repro import MacromodelingFlow, make_paper_testcase
from repro.timedomain import close_loop, simulate_transient


def main():
    testcase = make_paper_testcase()
    flow = MacromodelingFlow()
    result = flow.run(testcase.data, testcase.termination, testcase.observe_port)

    z_dc = abs(result.reference_impedance[0])
    print(f"Nominal DC target impedance: {z_dc * 1e3:.3f} mohm")
    print("Step excitation: 1 A total switching current, split over "
          f"{len(testcase.die_ports)} die ports\n")

    models = {
        "passive, weighted cost": result.weighted_enforced.model,
        "passive, standard cost": result.standard_enforced.model,
    }
    droops = {}
    for label, model in models.items():
        loop = close_loop(model, testcase.termination)
        stable = loop.is_stable(tol=1e-3)
        sim = simulate_transient(
            model, testcase.termination, t_end=2e-6, dt=5e-11
        )
        droop = sim.droop(testcase.observe_port)
        droops[label] = (sim.time, droop)
        print(f"{label}:")
        print(f"  closed loop stable : {stable}")
        print(f"  peak droop         : {droop.max() * 1e3:.3f} mV")
        print(f"  settled droop      : {droop[-1] * 1e3:.3f} mV "
              f"(nominal {z_dc * 1e3:.3f} mV)")
        error = abs(droop[-1] - z_dc) / z_dc
        print(f"  settled-level error: {error * 100:.1f} %\n")

    # Print a coarse waveform table for the weighted model.
    time, droop = droops["passive, weighted cost"]
    print(f"{'t [ns]':>8s} {'droop [mV]':>11s}")
    for k in range(0, time.size, max(1, time.size // 20)):
        print(f"{time[k] * 1e9:8.1f} {droop[k] * 1e3:11.4f}")

    wtd_err = abs(droops["passive, weighted cost"][1][-1] - z_dc) / z_dc
    std_err = abs(droops["passive, standard cost"][1][-1] - z_dc) / z_dc
    print(f"\nSettled-droop error: weighted {wtd_err*100:.1f}% vs "
          f"standard {std_err*100:.1f}% -- the frequency-domain accuracy "
          "loss of unweighted enforcement is a real time-domain error.")


if __name__ == "__main__":
    main()
