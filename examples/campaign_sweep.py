"""Campaign sweep: characterize a fleet of PDN loading scenarios at once.

Where the other examples run the sensitivity-weighted flow on *one* PDN,
this one asks the fleet-level question of power-integrity practice: across
decap stuffing options, VRM regulation states and both weighting modes,
how bad does the loaded-impedance error get, and does the sensitivity
weighting keep its edge everywhere?

The sweep expands to 24 scenarios (2 weight modes x 3 decap scalings x
2 VRM resistances x 2 switching currents), runs them through a process
pool with content-addressed caching, then re-runs the campaign to show
that a resumed/cached invocation is nearly free.

Run:  python examples/campaign_sweep.py        (headless, ~a minute)
"""

import logging
import shutil
import time
from pathlib import Path

from repro.campaign import (
    CampaignRegistry,
    CampaignSpec,
    FlowCache,
    ScenarioSpec,
    campaign_report,
    default_jobs,
    run_campaign,
    worst_by_group,
)
from repro.util.logging import enable_console_logging


def main():
    enable_console_logging(logging.INFO)
    out = Path("campaign_sweep_out")
    if out.exists():
        shutil.rmtree(out)

    # Coarse-but-representative flow settings keep each run ~1 s so the
    # 24-scenario sweep finishes quickly; bump n_frequencies/n_poles for
    # paper-grade accuracy.
    base = ScenarioSpec(
        name="pdn",
        size="small",
        n_frequencies=61,
        include_dc=False,
        n_poles=8,
        refinement_rounds=1,
        weight_model_order=4,
    )
    spec = CampaignSpec.from_axes(
        "sweep",
        base,
        {
            "weight_mode": ["relative", "absolute"],
            "decap_c_scale": [0.5, 1.0, 2.0],
            "vrm_resistance": [1e-4, 1e-3],
            "total_die_current": [1.0, 2.0],
        },
    )
    scenarios = spec.expand()
    print(f"campaign {spec.name!r}: {len(scenarios)} scenarios, "
          f"{default_jobs()} workers\n")

    registry = CampaignRegistry(out / "registry")
    cache = FlowCache(out / "cache")

    started = time.perf_counter()
    result = run_campaign(spec, registry=registry, cache=cache,
                          jobs=default_jobs())
    cold_s = time.perf_counter() - started
    print()
    print(campaign_report(result))

    # Second invocation: the registry already holds every run, so --resume
    # semantics skip straight to the stored records.
    started = time.perf_counter()
    resumed = run_campaign(spec, registry=registry, cache=cache,
                           jobs=default_jobs(), resume=True)
    resume_s = time.perf_counter() - started
    print(f"\ncold run : {cold_s:6.2f} s")
    print(f"resume   : {resume_s:6.2f} s "
          f"({resumed.n_resumed} runs resumed, "
          f"{cold_s / max(resume_s, 1e-9):.0f}x faster)")

    worst = worst_by_group(result.records, "weight_mode",
                           "low_band_rel_impedance_weighted_cost")
    print("\nFleet verdict (worst low-band relZ error of the "
          "weighted-cost passive model):")
    for mode, entry in sorted(worst.items()):
        print(f"  {mode:<9s} {entry['value']:8.4f}  ({entry['run_id']})")
    print("\nArtifacts under", out)


if __name__ == "__main__":
    main()
