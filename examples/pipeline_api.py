"""Pipeline API: embed the engine, insert a custom stage, swap a variant.

Three things the composable pipeline engine (:mod:`repro.api`) gives you
that the fixed ``MacromodelingFlow.run`` chain could not:

1. **Embedding with per-stage caching** -- seed a
   :func:`~repro.api.pipeline.standard_pipeline` with in-memory data and
   point it at a content-addressed :class:`~repro.api.ArtifactStore`;
   re-runs (and any other pipeline sharing the store) resume from stored
   stage results.
2. **Custom stage insertion** -- a ``WeightBoostAuditStage`` rides
   between the weighting and enforcement stages, consuming the weight
   artifacts and publishing a new ``weight_stats`` artifact, without
   touching any stock stage.
3. **Variant stages** -- a ``SmoothedWeightingStage`` subclass overrides
   just the weighting law (moving-average smoothing of the sensitivity
   weights); the store recognises that the data and the upstream stages
   are unchanged, so the standard fit and sensitivity stages are cache
   hits and only weighting/enforcement/validation recompute.

Run:  python examples/pipeline_api.py
"""

import tempfile

import numpy as np

from repro import make_paper_testcase
from repro.api import (
    ArtifactSpec,
    ArtifactStore,
    PipelineStage,
    ReproConfig,
    TimingObserver,
    WeightingStage,
    standard_pipeline,
)
from repro.flow.macromodel import FlowOptions
from repro.vectfit.options import VFOptions


class WeightBoostAuditStage(PipelineStage):
    """Custom stage: how much did refinement boost the weights, and where?"""

    name = "weight_audit"
    inputs = (
        ArtifactSpec("network", description="for the frequency grid"),
        ArtifactSpec("base_weights", np.ndarray),
        ArtifactSpec("final_weights", np.ndarray),
    )
    outputs = (ArtifactSpec("weight_stats", dict),)

    def run(self, config, inputs):
        boost = inputs["final_weights"] / inputs["base_weights"]
        peak = int(np.argmax(boost))
        return {
            "weight_stats": {
                "max_boost": float(boost[peak]),
                "max_boost_hz": float(inputs["network"].frequencies[peak]),
                "mean_boost": float(np.mean(boost)),
            }
        }


class SmoothedWeightingStage(WeightingStage):
    """Variant weighting law: 5-point moving average of the base weights.

    Overriding :meth:`base_weights` is enough -- the weighted fit, the
    refinement loop and the Xi~ model all come from the stock stage.
    Store entries can never collide with the stock stage's (the concrete
    class is part of every stage cache key); the bumped ``version``
    additionally marks revisions of *this* stage's own numerics.
    """

    version = "smoothed-1"

    def base_weights(self, config, data, xi, reference):
        base = super().base_weights(config, data, xi, reference)
        kernel = np.ones(5) / 5.0
        padded = np.pad(base, 2, mode="edge")
        return np.maximum(
            np.convolve(padded, kernel, mode="valid"),
            config.flow.weight_floor,
        )


def describe(label, run):
    print(f"\n[{label}]")
    for execution in run.executions:
        print(
            f"  {execution.stage:<14s} {execution.status:<9s}"
            f" {execution.seconds:7.3f}s"
        )


def main():
    testcase = make_paper_testcase(n_frequencies=61, include_dc=False)
    config = ReproConfig.from_flow_options(
        FlowOptions(vf=VFOptions(n_poles=8), refinement_rounds=1)
    )
    seed = {
        "network": testcase.data,
        "termination": testcase.termination,
        "observe_port": testcase.observe_port,
    }
    store = ArtifactStore(tempfile.mkdtemp(prefix="repro-stages-"))
    timer = TimingObserver()

    # 1. The stock flow, with the audit stage inserted mid-chain.
    pipeline = standard_pipeline(store=store, observers=(timer,)).with_stage(
        WeightBoostAuditStage(), after="weighting"
    )
    print("stage graph:")
    print(pipeline.describe())
    run = pipeline.run(config, seed=dict(seed))
    describe("stock weighting + audit stage", run)
    stats = run["weight_stats"]
    print(
        f"  refinement boosted weights up to {stats['max_boost']:.2f}x "
        f"(at {stats['max_boost_hz']:.3g} Hz)"
    )

    # 2. The smoothed-weighting variant over the same store: upstream
    #    stages (standard fit, sensitivity) are served from the store.
    variant = pipeline.replace_stage("weighting", SmoothedWeightingStage())
    variant_run = variant.run(config, seed=dict(seed))
    describe("smoothed weighting variant", variant_run)

    stock = run["headline_metrics"]
    smooth = variant_run["headline_metrics"]
    print("\nmax rel Z error (weighted cost):")
    print(f"  stock weighting    : {stock['max_rel_impedance_weighted_cost']:.4f}")
    print(f"  smoothed weighting : {smooth['max_rel_impedance_weighted_cost']:.4f}")

    cached = [e.stage for e in variant_run.executions if e.status == "cached"]
    print(f"store-served stages on the variant run: {', '.join(cached)}")


if __name__ == "__main__":
    main()
