"""Power-integrity scenario: build a custom PDN, inspect its loaded
impedance, and evaluate a decap placement change.

Demonstrates the substrate API directly (no macromodeling): geometry ->
circuit -> scattering data -> loaded target impedance under two candidate
decoupling strategies.  This is the kind of what-if exploration the
paper's intro motivates (decoupling capacitors, VRM, active die blocks).

Run:  python examples/pdn_power_integrity.py
"""

import numpy as np

from repro.circuits.components import (
    DecouplingCapacitor,
    DieBlock,
    OpenTermination,
    ShortTermination,
)
from repro.circuits.mna import ACAnalysis
from repro.pdn.builder import build_circuit
from repro.pdn.geometry import PDNGeometry, PlaneSpec, PortSpec
from repro.pdn.termination import TerminationNetwork
from repro.sensitivity.zpdn import target_impedance
from repro.util.linalg import log_spaced_frequencies


def build_custom_pdn():
    """A 5-port single-plane board with two decap sites and one VRM."""
    board = PlaneSpec(
        name="board",
        nx=5,
        ny=5,
        cell_resistance=1e-3,
        cell_inductance=0.25e-9,
        node_capacitance=40e-12,
        loss_tangent=0.04,
        skin_corner_hz=2e7,
    )
    ports = [
        PortSpec("board", (2, 2), "soc", role="die"),
        PortSpec("board", (1, 1), "capA", role="decap"),
        PortSpec("board", (3, 3), "capB", role="decap"),
        PortSpec("board", (0, 4), "vrm", role="vrm"),
        PortSpec("board", (4, 0), "probe", role="open"),
    ]
    return PDNGeometry(planes=[board], connections=[], ports=ports)


def termination_with(decap_a, decap_b):
    return TerminationNetwork(
        terminations=[
            DieBlock(resistance=0.15, capacitance=5e-9),
            decap_a,
            decap_b,
            ShortTermination(resistance=2e-4),
            OpenTermination(),
        ],
        excitations=np.array([1.0, 0.0, 0.0, 0.0, 0.0]),
    )


def main():
    geometry = build_custom_pdn()
    circuit = build_circuit(geometry)
    frequencies = log_spaced_frequencies(1e3, 1e9, 121, include_dc=True)
    data = ACAnalysis(circuit).scattering(frequencies)
    print(f"Custom PDN: {data.n_ports} ports, {data.n_frequencies} points, "
          f"passive={np.all(data.passivity_metric() <= 1.0)}")

    # Strategy 1: two identical bulk 10 uF decaps.
    bulk = DecouplingCapacitor(capacitance=10e-6, esr=5e-3, esl=2e-9)
    z_bulk = target_impedance(
        data.samples, data.omega, termination_with(bulk, bulk), observe_port=0
    )
    # Strategy 2: staggered values to spread the anti-resonances.
    mid = DecouplingCapacitor(capacitance=1e-6, esr=8e-3, esl=1e-9)
    hf = DecouplingCapacitor(capacitance=100e-9, esr=15e-3, esl=0.5e-9)
    z_staggered = target_impedance(
        data.samples, data.omega, termination_with(mid, hf), observe_port=0
    )

    print(f"\n{'f [Hz]':>12s} {'|Z| bulk [ohm]':>15s} {'|Z| staggered [ohm]':>20s}")
    for k in range(1, data.n_frequencies, 12):
        print(
            f"{frequencies[k]:12.4g} {abs(z_bulk[k]):15.5f} "
            f"{abs(z_staggered[k]):20.5f}"
        )

    band = (frequencies > 1e6) & (frequencies < 1e8)
    peak_bulk = np.abs(z_bulk)[band].max()
    peak_staggered = np.abs(z_staggered)[band].max()
    print(f"\nPeak |Z| in 1 MHz - 100 MHz: bulk {peak_bulk:.4f} ohm, "
          f"staggered {peak_staggered:.4f} ohm")
    winner = "staggered" if peak_staggered < peak_bulk else "bulk"
    print(f"Better decoupling strategy for this band: {winner}")


if __name__ == "__main__":
    main()
