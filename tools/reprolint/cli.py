"""Command-line front end shared by ``python -m tools.reprolint`` and
``repro lint``.

Exit codes are deterministic and CI-friendly: 0 clean, 1 findings,
2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from tools.reprolint.checkers import default_checkers
from tools.reprolint.checkers.telemetry import (
    REGISTRY_PATH,
    collect_counters,
    load_registry,
)
from tools.reprolint.core import Engine, Finding, write_json

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2

DEFAULT_PATHS = ("src", "tests")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "AST-based invariant checks for the repro codebase: backend "
            "routing, telemetry hygiene, error taxonomy, fingerprint "
            "safety, import hygiene."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS),
        help="files or directories to scan (default: src tests)",
    )
    parser.add_argument(
        "--root", default=None,
        help="repository root paths are relative to (default: cwd)",
    )
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated subset of rules to run",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable report on stdout",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--update-registry", action="store_true",
        help=(
            "rewrite tools/reprolint/registry/counters.txt from the "
            "literal counter names in the scanned files (mirrors "
            "tools/api_surface.py --update)"
        ),
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="run each checker against its embedded fixtures and exit",
    )
    return parser


def main(argv: list[str] | None = None, root: Path | None = None) -> int:
    args = build_parser().parse_args(argv)
    checkers = default_checkers()

    if args.list_rules:
        for checker in checkers:
            print(f"{checker.name}: {checker.description}")
        print("pragma: suppression pragmas must carry a reason and name "
              "known rules (reserved; cannot be suppressed)")
        return EXIT_CLEAN

    if args.self_test:
        from tools.reprolint.selftest import run_self_test

        return run_self_test()

    engine = Engine(
        checkers, root=Path(args.root) if args.root else root
    )
    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    try:
        if args.update_registry:
            return _update_registry(engine, args.paths)
        report = engine.run(args.paths, rules=rules)
    except (FileNotFoundError, ValueError) as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    report.findings.extend(_registry_drift(engine, args.paths))
    if args.json:
        write_json(report)
    else:
        print(report.render())
    return EXIT_CLEAN if report.ok else EXIT_FINDINGS


def _registry_drift(engine: Engine, paths: list[str]) -> list[Finding]:
    """Stale committed counters: in the registry, absent from the code.

    Only meaningful when the scan covers the instrumented tree, so the
    check is skipped unless ``src`` is among the scanned paths.
    """
    if not any(Path(p).name == "src" for p in paths):
        return []
    project, _ = engine.load(paths)
    live = collect_counters(project)
    stale = sorted(load_registry() - live)
    registry_rel = REGISTRY_PATH.name
    return [
        Finding(
            f"tools/reprolint/registry/{registry_rel}", 1, 0,
            "telemetry-hygiene",
            f"registered counter {name!r} no longer appears at any "
            "instrumented call site; run --update-registry",
        )
        for name in stale
    ]


def _update_registry(engine: Engine, paths: list[str]) -> int:
    project, errors = engine.load(paths)
    if errors:
        for finding in errors:
            print(finding.render(), file=sys.stderr)
        return EXIT_ERROR
    counters = sorted(collect_counters(project))
    REGISTRY_PATH.parent.mkdir(parents=True, exist_ok=True)
    REGISTRY_PATH.write_text(
        "# Counter names reachable from literal obs.incr() call sites.\n"
        "# Regenerate with: python -m tools.reprolint --update-registry\n"
        + "".join(f"{name}\n" for name in counters),
        encoding="utf-8",
    )
    print(f"reprolint: wrote {len(counters)} counters to {REGISTRY_PATH}")
    return EXIT_CLEAN
