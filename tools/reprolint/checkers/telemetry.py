"""telemetry-hygiene: span/counter/event names must parse.

``repro trace`` and the CI ``run_metrics.json`` assertions *parse* the
names recorded by :mod:`repro.obs.telemetry`:

* span paths group by a ``category:name`` grammar (``stage:enforce``,
  ``kernel:qp_solve``) -- the trace renderer's per-stage/per-kernel
  tables key off the category prefix;
* counters are lowercase dotted paths (``fallback.qp_dense``) and the
  CI fault-injection job asserts specific ``retry.*`` / ``fallback.*``
  counters, so a typo'd literal would silently never trip an assert.

This rule validates every **literal** first argument to
``span``/``emit``/``incr``/``gauge``/``next_seq`` reached through a
``repro.obs`` import, and additionally requires literal counter names to
be committed to ``tools/reprolint/registry/counters.txt`` (run
``python -m tools.reprolint --update-registry`` after adding one, the
same workflow as the api-surface snapshot).  Dynamic names are checked
on their literal f-string prefix only.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterator

from tools.reprolint.core import (
    Finding,
    Module,
    Project,
    fstring_prefix,
    literal_str,
)

REGISTRY_PATH = Path(__file__).resolve().parent.parent / "registry" / "counters.txt"

#: Allowed span categories (the trace renderer groups by these).
SPAN_CATEGORIES = ("stage", "kernel", "campaign", "enforce", "checker")

_SPAN_RE = re.compile(
    r"^(" + "|".join(SPAN_CATEGORIES) + r"):[a-z0-9_.]+$"
)
_DOTTED_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")
#: Charset allowed in a dynamic name's literal prefix.
_PREFIX_RE = re.compile(r"^[a-z][a-z0-9_.:]*$")

_HOOKS = frozenset({"span", "emit", "incr", "gauge", "next_seq"})

#: Only product instrumentation is under the rule: tests and examples
#: deliberately emit arbitrary names at the telemetry API itself.
SCOPE_PREFIX = "src/repro/"


def load_registry(path: Path = REGISTRY_PATH) -> set[str]:
    """Committed counter names (blank lines and # comments ignored)."""
    if not path.exists():
        return set()
    names = set()
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            names.add(line)
    return names


def collect_counters(project: Project) -> set[str]:
    """Every literal counter name at an ``incr`` site in the project."""
    counters: set[str] = set()
    checker = TelemetryHygieneChecker()
    for module in project.modules:
        if not module.relpath.startswith(SCOPE_PREFIX):
            continue
        for call, hook in checker._hook_calls(module):
            if hook == "incr" and call.args:
                counters.update(literal_str(call.args[0]))
    return counters


class TelemetryHygieneChecker:
    name = "telemetry-hygiene"
    description = (
        "span/emit/incr/gauge names must follow the trace grammar; "
        "literal counters must be in registry/counters.txt"
    )

    def __init__(self, registry: set[str] | None = None) -> None:
        self._registry = registry

    @property
    def registry(self) -> set[str]:
        if self._registry is None:
            self._registry = load_registry()
        return self._registry

    # ------------------------------------------------------------------
    def _telemetry_names(self, module: Module) -> tuple[set[str], set[str]]:
        """(bare hook names, receiver names) bound to repro.obs here."""
        bare: set[str] = set()
        receivers: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                if node.module == "repro" :
                    for name in node.names:
                        if name.name == "obs":
                            receivers.add(name.asname or "obs")
                elif node.module == "repro.obs":
                    for name in node.names:
                        if name.name == "telemetry":
                            receivers.add(name.asname or "telemetry")
                elif node.module == "repro.obs.telemetry":
                    for name in node.names:
                        if name.name in _HOOKS:
                            bare.add(name.asname or name.name)
            elif isinstance(node, ast.Import):
                for name in node.names:
                    if name.name in ("repro.obs", "repro.obs.telemetry"):
                        if name.asname:
                            receivers.add(name.asname)
        return bare, receivers

    def _hook_calls(self, module: Module) -> Iterator[tuple[ast.Call, str]]:
        bare, receivers = self._telemetry_names(module)
        if not bare and not receivers:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in bare:
                yield node, func.id
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in _HOOKS
                and isinstance(func.value, ast.Name)
                and func.value.id in receivers
            ):
                yield node, func.attr

    # ------------------------------------------------------------------
    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        if not module.relpath.startswith(SCOPE_PREFIX):
            return
        for call, hook in self._hook_calls(module):
            if not call.args:
                continue
            arg = call.args[0]
            names = literal_str(arg)
            if names:
                for name in names:
                    yield from self._check_literal(module, call, hook, name)
                continue
            prefix = fstring_prefix(arg)
            if prefix is not None and not _PREFIX_RE.match(prefix):
                yield Finding(
                    module.relpath, call.lineno, call.col_offset, self.name,
                    f"{hook}() dynamic name prefix {prefix!r} breaks the "
                    "telemetry grammar (lowercase dotted/colon paths)",
                    end_line=call.end_lineno,
                )

    def _check_literal(
        self, module: Module, call: ast.Call, hook: str, name: str
    ) -> Iterator[Finding]:
        where = (module.relpath, call.lineno, call.col_offset)
        if hook == "span":
            if not _SPAN_RE.match(name):
                yield Finding(
                    *where, self.name,
                    f"span name {name!r} must match "
                    f"'<category>:<name>' with category in "
                    f"{SPAN_CATEGORIES} (repro trace groups on it)",
                    end_line=call.end_lineno,
                )
        elif hook == "incr":
            if not _DOTTED_RE.match(name):
                yield Finding(
                    *where, self.name,
                    f"counter name {name!r} must be a lowercase dotted "
                    "path like 'fallback.qp_dense'",
                    end_line=call.end_lineno,
                )
            elif name not in self.registry:
                yield Finding(
                    *where, self.name,
                    f"counter {name!r} is not in the committed registry "
                    "(tools/reprolint/registry/counters.txt); run "
                    "`python -m tools.reprolint --update-registry` if it "
                    "is intentional",
                    end_line=call.end_lineno,
                )
        elif hook in ("emit", "gauge", "next_seq"):
            if not _DOTTED_RE.match(name):
                yield Finding(
                    *where, self.name,
                    f"{hook}() name {name!r} must be a lowercase dotted "
                    "path like 'enforce.iteration'",
                    end_line=call.end_lineno,
                )
