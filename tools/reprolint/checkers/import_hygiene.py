"""import-hygiene: ``repro.backend`` never imports upward.

PR 8 established the dependency direction: the backend layer is a leaf
the kernel packages call *down* into, selected by options plumbed from
api/campaign.  An import from a higher layer inside ``repro.backend``
(api, campaign, obs, flow, ingest, the solver packages, the CLI) would
recreate exactly the import cycles the refactor untangled -- and would
drag the whole pipeline into every ``import repro.backend``.

Module-level imports of any non-backend ``repro`` subpackage except
``repro.util`` are flagged.  Function-scope (lazy) imports are allowed
for the telemetry hook module only -- the established pattern from
``repro.util.linalg``, which late-imports ``repro.obs.telemetry`` at
the single fallback site so the hook costs nothing at import time and
creates no import-time edge; lazy imports of api/campaign/cli remain
forbidden at any depth.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.core import Finding, Module, Project

#: The package under the rule.
BACKEND_PREFIX = "src/repro/backend/"

#: repro subpackages the backend may import at module level.
ALLOWED_SUBPACKAGES = frozenset({"backend", "util"})

#: Subpackages forbidden even as function-scope lazy imports.
FORBIDDEN_ANYWHERE = frozenset({"api", "campaign", "cli"})

#: Lazy-import exception: the leaf telemetry hook module.
LAZY_ALLOWED_MODULES = frozenset({"repro.obs.telemetry"})


def _imported_repro_modules(node: ast.stmt) -> list[tuple[str, tuple[str, ...]]]:
    """(repro module, names bound from it) pairs an import binds.

    ``from repro.obs import telemetry`` yields ``("repro.obs",
    ("telemetry",))`` so callers can recognize submodule imports like
    the telemetry-hook pattern.
    """
    out: list[tuple[str, tuple[str, ...]]] = []
    if isinstance(node, ast.Import):
        for name in node.names:
            if name.name == "repro" or name.name.startswith("repro."):
                out.append((name.name, ()))
    elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
        if node.module == "repro":
            out.extend((f"repro.{n.name}", ()) for n in node.names)
        elif node.module.startswith("repro."):
            out.append((node.module, tuple(n.name for n in node.names)))
    return out


def _subpackage(module_path: str) -> str | None:
    parts = module_path.split(".")
    return parts[1] if len(parts) > 1 and parts[0] == "repro" else None


class ImportHygieneChecker:
    name = "import-hygiene"
    description = (
        "repro.backend must not import higher layers (api/campaign/obs/"
        "solver packages); lazy telemetry-hook imports excepted"
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        if not module.relpath.startswith(BACKEND_PREFIX):
            return
        module_level = set(module.tree.body)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            at_module_level = node in module_level
            for target, bound in _imported_repro_modules(node):
                sub = _subpackage(target)
                if sub is None or sub in ALLOWED_SUBPACKAGES:
                    continue
                lazy_ok = target in LAZY_ALLOWED_MODULES or any(
                    f"{target}.{name}" in LAZY_ALLOWED_MODULES
                    for name in bound
                )
                if not at_module_level:
                    if sub in FORBIDDEN_ANYWHERE:
                        yield Finding(
                            module.relpath, node.lineno, node.col_offset,
                            self.name,
                            f"repro.backend lazily imports {target} -- "
                            "api/campaign/cli must never be reachable "
                            "from the backend layer",
                            end_line=node.end_lineno,
                        )
                    elif not lazy_ok:
                        yield Finding(
                            module.relpath, node.lineno, node.col_offset,
                            self.name,
                            f"repro.backend lazily imports {target}; only "
                            f"{sorted(LAZY_ALLOWED_MODULES)} may be "
                            "late-imported (telemetry hook pattern)",
                            end_line=node.end_lineno,
                        )
                    continue
                yield Finding(
                    module.relpath, node.lineno, node.col_offset, self.name,
                    f"repro.backend imports {target} at module level -- "
                    "the backend is a leaf layer; move the import into "
                    "the call site (telemetry hooks) or invert the "
                    "dependency",
                    end_line=node.end_lineno,
                )
