"""backend-routing: dense kernels must go through ``repro.backend``.

PR 8 routed every dense linear-algebra kernel in the solver packages
through the active :class:`repro.backend.Backend`, so a ``--backend
cupy`` run actually executes on the device.  A direct
``np.linalg.svd(...)`` in those packages silently pins the operation to
host LAPACK for every backend -- numerically fine, but it defeats the
routing layer and never shows up in a trace.

This rule flags **calls** to ``numpy.linalg`` / ``scipy.linalg``
functions that have a corresponding :class:`Backend` primitive, inside
the kernel packages (``vectfit``, ``passivity``, ``statespace``,
``sensitivity``).  Host-only utilities with no backend primitive
(``norm``, ``inv``, ``solve``, ``solve_triangular``,
``solve_continuous_lyapunov``, ``eigvalsh``, ``matrix_balance``) are not
flagged, and neither are bare references such as ``except
np.linalg.LinAlgError``.

Documented host paths -- the active-set/NNLS solver in
``passivity/qp.py``, per-column rescue fallbacks, reference oracle
kernels -- carry suppression pragmas whose reasons double as
documentation.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.core import Finding, Module, Project, dotted_path, import_aliases

#: Packages whose dense numerics must route through repro.backend.
KERNEL_PACKAGES = (
    "src/repro/vectfit/",
    "src/repro/passivity/",
    "src/repro/statespace/",
    "src/repro/sensitivity/",
)

#: linalg operations with a Backend primitive (see repro.backend.base).
ROUTED_OPS = frozenset({
    "lstsq", "qr", "cholesky", "cho_factor", "cho_solve",
    "eig", "eigvals", "eigh", "svd",
})

#: Module prefixes that count as direct host linalg.
_HOST_MODULES = ("numpy.linalg", "scipy.linalg")


class BackendRoutingChecker:
    name = "backend-routing"
    description = (
        "dense linalg calls in kernel packages must route through "
        "repro.backend (pragma documented host paths)"
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        if not module.relpath.startswith(KERNEL_PACKAGES):
            return
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            path = dotted_path(node.func, aliases)
            if path is None:
                continue
            head, _, op = path.rpartition(".")
            if op not in ROUTED_OPS:
                continue
            if head in _HOST_MODULES or path in {
                f"{mod}.{op}" for mod in _HOST_MODULES
            }:
                yield Finding(
                    module.relpath, node.lineno, node.col_offset, self.name,
                    f"direct host linalg call {path}() -- route through the "
                    "active repro.backend (get_backend()/VFOptions.backend) "
                    "or add a pragma documenting the host path",
                    end_line=node.end_lineno,
                )
