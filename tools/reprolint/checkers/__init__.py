"""Checker registry: every rule reprolint knows about."""

from tools.reprolint.checkers.backend_routing import BackendRoutingChecker
from tools.reprolint.checkers.error_taxonomy import ErrorTaxonomyChecker
from tools.reprolint.checkers.fingerprint import FingerprintSafetyChecker
from tools.reprolint.checkers.import_hygiene import ImportHygieneChecker
from tools.reprolint.checkers.telemetry import TelemetryHygieneChecker

#: Instantiable rule classes, in catalogue order.
CHECKER_CLASSES = (
    BackendRoutingChecker,
    TelemetryHygieneChecker,
    ErrorTaxonomyChecker,
    FingerprintSafetyChecker,
    ImportHygieneChecker,
)


def default_checkers():
    """Fresh instances of every registered checker."""
    return [cls() for cls in CHECKER_CLASSES]


__all__ = [
    "BackendRoutingChecker",
    "TelemetryHygieneChecker",
    "ErrorTaxonomyChecker",
    "FingerprintSafetyChecker",
    "ImportHygieneChecker",
    "CHECKER_CLASSES",
    "default_checkers",
]
