"""fingerprint-safety: digest-fed option dataclasses stay sound.

The flow cache, stage store and campaign registry all key on
content-addressed digests of option dataclasses
(:func:`repro.campaign.cache.flow_fingerprint`,
:func:`repro.api.config.options_token`,
:meth:`repro.campaign.scenario.ScenarioSpec.run_id`).  Two invariants
keep those keys trustworthy:

1. **No mutable defaults.**  A ``list``/``dict``/``set`` default (even
   via ``field(default_factory=...)``) can be mutated after
   construction, so two logically different configs could digest
   identically -- or one config could change its own key mid-run.

2. **Every field reaches the digest.**  A field the digest function
   never consumes aliases two distinct configs onto one cache entry,
   which resurrects the exact stale-cache bug content addressing was
   built to kill.  Digest functions that serialize via
   ``dataclasses.asdict`` / ``dataclasses.fields`` /
   ``options_to_dict`` cover every field structurally; functions that
   enumerate fields by hand must mention each one.

The watched (class, digest) pairs are pinned in :data:`WATCHED`; add an
entry when a new option dataclass starts feeding a digest.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterator

from tools.reprolint.core import Finding, Module, Project


@dataclasses.dataclass(frozen=True)
class Watched:
    """One dataclass/digest pair under the rule."""

    class_name: str
    class_path: str  # relpath suffix of the defining module
    digest_path: str  # relpath suffix of the module holding the digest fn
    digest_func: str  # "func" or "Class.method"


#: Option dataclasses that feed content-addressed digests.
WATCHED = (
    Watched("VFOptions", "repro/vectfit/options.py",
            "repro/api/config.py", "options_to_dict"),
    Watched("EnforcementOptions", "repro/passivity/enforce.py",
            "repro/api/config.py", "options_to_dict"),
    Watched("FlowOptions", "repro/flow/macromodel.py",
            "repro/campaign/cache.py", "_options_token"),
    Watched("ReproConfig", "repro/api/config.py",
            "repro/api/config.py", "ReproConfig.to_dict"),
    Watched("ScenarioSpec", "repro/campaign/scenario.py",
            "repro/campaign/scenario.py", "ScenarioSpec.to_dict"),
)

#: Calls inside a digest function that consume *all* fields at once.
_FULL_COVERAGE_CALLS = frozenset({
    "asdict", "fields", "options_to_dict", "to_dict", "_options_token",
})

_MUTABLE_FACTORIES = frozenset({"list", "dict", "set"})


def _dataclass_fields(class_node: ast.ClassDef) -> list[tuple[str, ast.AnnAssign]]:
    out = []
    for stmt in class_node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            annotation = ast.unparse(stmt.annotation)
            if "ClassVar" in annotation:
                continue
            out.append((stmt.target.id, stmt))
    return out


def _find_class(module: Module, name: str) -> ast.ClassDef | None:
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _find_function(module: Module, dotted: str) -> ast.FunctionDef | None:
    parts = dotted.split(".")
    scope: list[ast.stmt] = module.tree.body
    node: ast.stmt | None = None
    for part in parts:
        node = None
        for stmt in scope:
            if isinstance(stmt, (ast.FunctionDef, ast.ClassDef)) and stmt.name == part:
                node = stmt
                break
        if node is None:
            return None
        scope = node.body if isinstance(node, (ast.ClassDef, ast.FunctionDef)) else []
    return node if isinstance(node, ast.FunctionDef) else None


class FingerprintSafetyChecker:
    name = "fingerprint-safety"
    description = (
        "digest-fed option dataclasses: no mutable defaults; every "
        "field must be consumed by the digest function"
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        for watched in WATCHED:
            if not module.relpath.endswith(watched.class_path):
                continue
            class_node = _find_class(module, watched.class_name)
            if class_node is None:
                yield Finding(
                    module.relpath, 1, 0, self.name,
                    f"watched dataclass {watched.class_name} not found in "
                    f"{module.relpath} (update tools/reprolint/checkers/"
                    "fingerprint.py WATCHED)",
                )
                continue
            fields = _dataclass_fields(class_node)
            yield from self._check_defaults(module, watched, fields)
            yield from self._check_coverage(module, project, watched,
                                            class_node, fields)

    # ------------------------------------------------------------------
    def _check_defaults(
        self,
        module: Module,
        watched: Watched,
        fields: list[tuple[str, ast.AnnAssign]],
    ) -> Iterator[Finding]:
        for name, stmt in fields:
            default = stmt.value
            if default is None:
                continue
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id == "field"
            ):
                for kw in default.keywords:
                    if (
                        kw.arg == "default_factory"
                        and isinstance(kw.value, ast.Name)
                        and kw.value.id in _MUTABLE_FACTORIES
                    ):
                        mutable = True
            if mutable:
                yield Finding(
                    module.relpath, stmt.lineno, stmt.col_offset, self.name,
                    f"{watched.class_name}.{name} has a mutable default -- "
                    "digest-fed options must be immutable so cache keys "
                    "cannot drift after construction",
                    end_line=stmt.end_lineno,
                )

    # ------------------------------------------------------------------
    def _check_coverage(
        self,
        module: Module,
        project: Project,
        watched: Watched,
        class_node: ast.ClassDef,
        fields: list[tuple[str, ast.AnnAssign]],
    ) -> Iterator[Finding]:
        digest_module = project.find(watched.digest_path)
        if digest_module is None:
            return  # digest module outside the scan set; nothing to verify
        func = _find_function(digest_module, watched.digest_func)
        if func is None:
            yield Finding(
                digest_module.relpath, 1, 0, self.name,
                f"digest function {watched.digest_func} for "
                f"{watched.class_name} not found in {digest_module.relpath} "
                "(update WATCHED)",
            )
            return
        consumed, full = self._consumed_names(func)
        if full:
            return
        missing = sorted(
            name for name, _ in fields if name not in consumed
        )
        if missing:
            yield Finding(
                module.relpath, class_node.lineno, class_node.col_offset,
                self.name,
                f"{watched.class_name} fields {missing} are never consumed "
                f"by digest function {watched.digest_func} "
                f"({digest_module.relpath}) -- two configs differing only "
                "there would collide on one cache key",
                end_line=class_node.lineno,
            )

    @staticmethod
    def _consumed_names(func: ast.FunctionDef) -> tuple[set[str], bool]:
        """(attribute names read off any object, full-coverage flag).

        Full coverage means a sentinel call (``asdict``/``fields``/...)
        receives the digested object *itself* (a bare name such as
        ``self`` or the options parameter) -- ``options_to_dict(
        self.flow)`` only covers the nested dataclass, so the enclosing
        function still gets per-field analysis.
        """
        consumed: set[str] = set()
        full = False
        for node in ast.walk(func):
            if isinstance(node, ast.Attribute):
                consumed.add(node.attr)
            if isinstance(node, ast.Call):
                callee = node.func
                callee_name = None
                if isinstance(callee, ast.Name):
                    callee_name = callee.id
                elif isinstance(callee, ast.Attribute):
                    callee_name = callee.attr
                if callee_name in _FULL_COVERAGE_CALLS and any(
                    isinstance(arg, ast.Name) for arg in node.args[:1]
                ):
                    full = True
        return consumed, full
