"""error-taxonomy: stage code raises typed ``repro.resilience`` errors.

The campaign retry engine classifies failures by
:func:`repro.resilience.errors.error_code_of`: a typed
:class:`~repro.resilience.errors.ReproError` carries a stable
``error_code`` plus stage/scenario context into run records, the
manifest and ``campaign.errors.*`` counters, while a bare ``ValueError``
collapses to the catch-all ``value_error`` code -- losing exactly the
signal ``--retry-failed`` and the failure summary are built on.

This rule flags ``raise ValueError/RuntimeError/Exception`` in the
modules where PR 7 requires the taxonomy (the pipeline stages, the
ingest subsystem and the campaign executor).  Dataclass
``__post_init__`` validation is exempt: option-constructor errors are
caller bugs raised before any stage runs, and the taxonomy's
``IngestError`` already *is* a ``ValueError`` for the sites that need
compatibility.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.core import Finding, Module, Project

#: Module paths (prefix match) where typed errors are required.
TYPED_ERROR_PATHS = (
    "src/repro/api/stages.py",
    "src/repro/ingest/",
    "src/repro/campaign/executor.py",
)

#: Builtin exceptions whose bare raise defeats retry classification.
BARE_EXCEPTIONS = frozenset({"ValueError", "RuntimeError", "Exception"})

#: Function bodies exempt from the rule (constructor validation).
_EXEMPT_FUNCTIONS = frozenset({"__post_init__"})


class ErrorTaxonomyChecker:
    name = "error-taxonomy"
    description = (
        "stage/ingest/executor code must raise typed repro.resilience "
        "errors, not bare ValueError/RuntimeError/Exception"
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        if not module.relpath.startswith(TYPED_ERROR_PATHS):
            return
        yield from self._walk(module, module.tree.body)

    def _walk(self, module: Module, body: list[ast.stmt]) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stmt.name in _EXEMPT_FUNCTIONS:
                    continue
                yield from self._walk(module, stmt.body)
            elif isinstance(stmt, ast.ClassDef):
                yield from self._walk(module, stmt.body)
            else:
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Raise):
                        yield from self._check_raise(module, node)

    def _check_raise(self, module: Module, node: ast.Raise) -> Iterator[Finding]:
        exc = node.exc
        name = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name in BARE_EXCEPTIONS:
            yield Finding(
                module.relpath, node.lineno, node.col_offset, self.name,
                f"bare `raise {name}` in stage code -- raise a typed "
                "repro.resilience error (IngestError is a ValueError; "
                "StageOutputError for poisoned artifacts) so retry "
                "classification keeps its error_code",
                end_line=node.end_lineno,
            )
