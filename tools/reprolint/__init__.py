"""reprolint: AST-based invariant checks for the repro codebase.

The conventions this package enforces are the ones the test suite and CI
already *rely on* but could not previously *check*:

* dense numerics in the kernel packages route through ``repro.backend``
  (``backend-routing``);
* telemetry names follow the span/counter grammar that ``repro trace``
  and the CI ``run_metrics.json`` assertions parse, and every literal
  counter is committed to a registry (``telemetry-hygiene``);
* stage code raises the typed ``repro.resilience`` taxonomy so retry
  classification keeps working (``error-taxonomy``);
* option dataclasses that feed content-addressed digests stay hashable
  and fully consumed by their digest functions (``fingerprint-safety``);
* ``repro.backend`` never imports upward into api/campaign/obs
  (``import-hygiene``).

Run ``python -m tools.reprolint src tests`` from the repository root, or
``repro lint``.  Suppress a finding with an inline pragma that carries a
mandatory reason::

    x = np.linalg.lstsq(a, b)  # reprolint: disable=backend-routing -- host fallback path

See ``tools/reprolint/README.md`` for the rule catalogue.
"""

from tools.reprolint.core import (
    Engine,
    Finding,
    Module,
    Project,
    parse_pragmas,
)

__all__ = ["Engine", "Finding", "Module", "Project", "parse_pragmas"]
