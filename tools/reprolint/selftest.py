"""Built-in sanity fixtures: each rule must fire on its seeded violation
and fall silent once the violation is pragma'd with a reason.

Run with ``python -m tools.reprolint --self-test``.  The real
fixture-file tests live in ``tests/test_reprolint.py``; this embedded
variant keeps the tool self-verifying even outside the test suite
(e.g. as a CI preflight).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from tools.reprolint.checkers import default_checkers
from tools.reprolint.core import Engine

#: rule -> (relative path, violating source).  Paths matter: most rules
#: are scoped to specific subtrees.
_VIOLATIONS: dict[str, tuple[str, str]] = {
    "backend-routing": (
        "src/repro/vectfit/selftest_mod.py",
        "import numpy as np\n"
        "def solve(a, b):\n"
        "    return np.linalg.lstsq(a, b, rcond=None)\n",
    ),
    "telemetry-hygiene": (
        "src/repro/selftest_mod.py",
        "from repro import obs\n"
        "def f():\n"
        "    obs.incr('no-such-counter!')\n",
    ),
    "error-taxonomy": (
        "src/repro/ingest/selftest_mod.py",
        "def load(path):\n"
        "    raise ValueError('bad file')\n",
    ),
    "fingerprint-safety": (
        # Checked via WATCHED below -- the embedded fixture instead
        # exercises the mutable-default arm on a stand-in VFOptions.
        "src/repro/vectfit/options.py",
        "from dataclasses import dataclass, field\n"
        "@dataclass(frozen=True)\n"
        "class VFOptions:\n"
        "    tags: list = field(default_factory=list)\n",
    ),
    "import-hygiene": (
        "src/repro/backend/selftest_mod.py",
        "from repro import campaign\n",
    ),
}

_PRAGMA = "  # reprolint: disable={rule} -- self-test suppression"


def run_self_test() -> int:
    failures: list[str] = []
    for rule, (relpath, source) in _VIOLATIONS.items():
        fired = _findings_for(rule, relpath, source)
        if not fired:
            failures.append(f"{rule}: did not fire on the seeded violation")
            continue
        suppressed_src = _suppress(source, fired[0], rule)
        still = _findings_for(rule, relpath, suppressed_src)
        if still:
            failures.append(
                f"{rule}: pragma with reason did not suppress "
                f"({still[0].message})"
            )
    if failures:
        for failure in failures:
            print(f"reprolint self-test FAIL: {failure}")
        return 1
    print(f"reprolint self-test: {len(_VIOLATIONS)} rules OK")
    return 0


def _findings_for(rule: str, relpath: str, source: str):
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        target = root / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
        engine = Engine(default_checkers(), root=root)
        report = engine.run([relpath], rules=[rule])
        return [f for f in report.findings if f.rule == rule]


def _suppress(source: str, finding, rule: str) -> str:
    lines = source.splitlines()
    index = finding.line - 1
    lines[index] = lines[index] + _PRAGMA.format(rule=rule)
    return "\n".join(lines) + "\n"
