"""reprolint engine: file discovery, pragma parsing, reporting.

The engine is deliberately small: a :class:`Module` is one parsed file
(source, AST, suppression pragmas), a :class:`Project` is the set of
scanned modules (checkers that need cross-file context, like
``fingerprint-safety``, look other modules up by path suffix), and a
checker is any object with ``name``/``description`` attributes and a
``check(module, project)`` generator yielding :class:`Finding`.

Suppression pragmas
-------------------
Two forms, both with a **mandatory reason** after ``--``:

* line pragma, on any physical line of the flagged statement::

      # reprolint: disable=backend-routing -- host-LAPACK fallback path

* file pragma, anywhere in the file (conventionally near the top),
  silencing a rule for the whole module::

      # reprolint: disable-file=backend-routing -- reference oracle kernels

A pragma without a reason, or naming an unknown rule, is itself reported
under the reserved ``pragma`` rule (which cannot be suppressed).
"""

from __future__ import annotations

import ast
import dataclasses
import json
import re
import sys
from pathlib import Path
from typing import Iterable, Iterator, Protocol

REPORT_FORMAT = "reprolint-report/1"

#: Directories never descended into during discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", ".mypy_cache", "build"}

#: Path prefixes (posix, relative to root) excluded by default: fixture
#: trees contain *deliberate* violations for the checker tests.
_SKIP_PREFIXES = ("tests/data/",)

_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s-]+?)\s*"
    r"(?:--\s*(?P<reason>.*\S)\s*)?$"
)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    ``end_line`` widens the window a line pragma may sit on (multi-line
    calls accept the pragma on any of their physical lines); it is not
    part of the JSON report.
    """

    file: str
    line: int
    col: int
    rule: str
    message: str
    end_line: int | None = dataclasses.field(default=None, compare=False)

    def to_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload.pop("end_line")
        return payload

    def render(self) -> str:
        return f"{self.file}:{self.line}:{self.col}: [{self.rule}] {self.message}"


@dataclasses.dataclass(frozen=True)
class Pragma:
    """One parsed suppression comment."""

    line: int
    kind: str  # "disable" | "disable-file"
    rules: tuple[str, ...]
    reason: str | None


class Checker(Protocol):
    name: str
    description: str

    def check(self, module: "Module", project: "Project") -> Iterator[Finding]:
        ...  # pragma: no cover - protocol


def parse_pragmas(text: str) -> list[Pragma]:
    """All reprolint pragmas in ``text``, in line order.

    Malformed pragmas (no ``=``, empty rule list) parse as best they can;
    validation against the known-rule set and the mandatory-reason policy
    happens in :meth:`Engine.run` so the errors carry file locations.
    """
    pragmas: list[Pragma] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if "reprolint" not in line:
            continue
        match = _PRAGMA_RE.search(line)
        if match is None:
            # A comment mentioning reprolint without the pragma shape is
            # left alone (this file's own docs would otherwise trip it).
            continue
        rules = tuple(
            r.strip() for r in match.group("rules").split(",") if r.strip()
        )
        pragmas.append(
            Pragma(
                line=lineno,
                kind=match.group("kind"),
                rules=rules,
                reason=match.group("reason"),
            )
        )
    return pragmas


class Module:
    """One parsed source file presented to checkers."""

    def __init__(self, path: Path, relpath: str, text: str) -> None:
        self.path = path
        self.relpath = relpath  # posix, relative to the scan root
        self.text = text
        self.tree = ast.parse(text, filename=relpath)
        self.pragmas = parse_pragmas(text)
        self._line_rules: dict[int, set[str]] = {}
        self._file_rules: set[str] = set()
        for pragma in self.pragmas:
            if pragma.reason is None:
                continue  # unusable; reported by the engine
            if pragma.kind == "disable-file":
                self._file_rules.update(pragma.rules)
            else:
                self._line_rules.setdefault(pragma.line, set()).update(
                    pragma.rules
                )

    def suppressed(self, rule: str, first_line: int, last_line: int | None) -> bool:
        """Is ``rule`` suppressed for a node spanning the given lines?"""
        if rule in self._file_rules:
            return True
        last = last_line if last_line is not None else first_line
        return any(
            rule in self._line_rules.get(line, ())
            for line in range(first_line, last + 1)
        )


class Project:
    """The full scan set; lookup service for cross-file checkers."""

    def __init__(self, modules: list[Module]) -> None:
        self.modules = modules
        self._by_relpath = {m.relpath: m for m in modules}

    def find(self, relpath_suffix: str) -> Module | None:
        """The scanned module whose relpath ends with ``relpath_suffix``."""
        hit = self._by_relpath.get(relpath_suffix)
        if hit is not None:
            return hit
        for relpath, module in self._by_relpath.items():
            if relpath.endswith("/" + relpath_suffix):
                return module
        return None


@dataclasses.dataclass
class Report:
    """Outcome of one engine run."""

    findings: list[Finding]
    files_scanned: int
    rules: list[str]

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "format": REPORT_FORMAT,
            "files_scanned": self.files_scanned,
            "rules": sorted(self.rules),
            "n_findings": len(self.findings),
            "findings": [f.to_dict() for f in sorted(
                self.findings, key=lambda f: (f.file, f.line, f.col, f.rule)
            )],
        }

    def render(self) -> str:
        lines = [f.render() for f in sorted(
            self.findings, key=lambda f: (f.file, f.line, f.col, f.rule)
        )]
        noun = "finding" if len(self.findings) == 1 else "findings"
        lines.append(
            f"reprolint: {len(self.findings)} {noun} in "
            f"{self.files_scanned} files"
        )
        return "\n".join(lines)


def discover(root: Path, paths: Iterable[str]) -> list[Path]:
    """Python files under ``paths`` (files or directories), sorted."""
    found: set[Path] = set()
    for entry in paths:
        target = (root / entry).resolve() if not Path(entry).is_absolute() else Path(entry)
        if target.is_file() and target.suffix == ".py":
            found.add(target)
            continue
        if not target.is_dir():
            raise FileNotFoundError(f"no such file or directory: {entry}")
        for path in target.rglob("*.py"):
            if any(part in _SKIP_DIRS for part in path.parts):
                continue
            found.add(path)
    kept = []
    for path in sorted(found):
        rel = _relpath(root, path)
        if rel.startswith(_SKIP_PREFIXES):
            continue
        kept.append(path)
    return kept


def _relpath(root: Path, path: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


class Engine:
    """Load files, run checkers, validate pragmas, collect findings."""

    def __init__(self, checkers: list[Checker], root: Path | None = None) -> None:
        self.checkers = list(checkers)
        self.root = (root or Path.cwd()).resolve()
        names = [c.name for c in self.checkers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate checker names: {names}")

    @property
    def rule_names(self) -> set[str]:
        return {c.name for c in self.checkers}

    def load(self, paths: Iterable[str]) -> tuple[Project, list[Finding]]:
        modules: list[Module] = []
        errors: list[Finding] = []
        for path in discover(self.root, paths):
            rel = _relpath(self.root, path)
            try:
                text = path.read_text(encoding="utf-8")
                modules.append(Module(path, rel, text))
            except (SyntaxError, UnicodeDecodeError) as exc:
                line = getattr(exc, "lineno", 1) or 1
                errors.append(Finding(rel, line, 0, "parse", str(exc)))
        return Project(modules), errors

    def run(self, paths: Iterable[str], rules: Iterable[str] | None = None) -> Report:
        selected = self.checkers
        if rules is not None:
            wanted = set(rules)
            unknown = wanted - self.rule_names
            if unknown:
                raise ValueError(f"unknown rules: {sorted(unknown)}")
            selected = [c for c in self.checkers if c.name in wanted]
        project, findings = self.load(paths)
        for module in project.modules:
            findings.extend(self._pragma_findings(module))
        for checker in selected:
            for module in project.modules:
                for finding in checker.check(module, project):
                    if module.suppressed(
                        finding.rule, finding.line, self._end_line(module, finding)
                    ):
                        continue
                    findings.append(finding)
        return Report(
            findings=findings,
            files_scanned=len(project.modules),
            rules=[c.name for c in selected],
        )

    @staticmethod
    def _end_line(module: Module, finding: Finding) -> int:
        return finding.end_line if finding.end_line is not None else finding.line

    def _pragma_findings(self, module: Module) -> Iterator[Finding]:
        """Malformed pragmas: missing reason or unknown rule names."""
        known = self.rule_names
        for pragma in module.pragmas:
            if pragma.reason is None:
                yield Finding(
                    module.relpath, pragma.line, 0, "pragma",
                    "suppression pragma requires a reason: "
                    "`# reprolint: disable=<rule> -- <why>`",
                )
            if not pragma.rules:
                yield Finding(
                    module.relpath, pragma.line, 0, "pragma",
                    "suppression pragma names no rules",
                )
            for rule in pragma.rules:
                if rule not in known:
                    yield Finding(
                        module.relpath, pragma.line, 0, "pragma",
                        f"unknown rule {rule!r} in suppression pragma "
                        f"(known: {', '.join(sorted(known))})",
                    )


# ----------------------------------------------------------------------
# Shared AST helpers used by several checkers
# ----------------------------------------------------------------------
def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map of local name -> dotted module/object path from top-level imports.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from scipy import linalg as sla`` -> ``{"sla": "scipy.linalg"}``;
    ``from numpy.linalg import lstsq`` -> ``{"lstsq": "numpy.linalg.lstsq"}``.
    Function-scope imports are included too (prefixed resolution is the
    caller's concern; names are rarely shadowed in this codebase).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.asname:
                    aliases[name.asname] = name.name
                else:
                    top = name.name.split(".", 1)[0]
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for name in node.names:
                if name.name == "*":
                    continue
                aliases[name.asname or name.name] = f"{node.module}.{name.name}"
    return aliases


def dotted_path(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """Resolve an attribute chain to a dotted path through the alias map.

    ``np.linalg.lstsq`` with ``{"np": "numpy"}`` -> ``"numpy.linalg.lstsq"``.
    Returns ``None`` for chains not rooted at a plain name.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


def literal_str(node: ast.expr) -> list[str]:
    """Literal string values an expression can take (empty when dynamic).

    Handles plain constants and conditional expressions over constants
    (``"a" if flag else "b"`` yields both arms), which is exactly the
    shape of the counter names at the instrumented call sites.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, ast.IfExp):
        return literal_str(node.body) + literal_str(node.orelse)
    return []


def fstring_prefix(node: ast.expr) -> str | None:
    """Leading literal text of an f-string, or ``None``."""
    if isinstance(node, ast.JoinedStr) and node.values:
        first = node.values[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
    return None


def write_json(report: Report, stream=None) -> None:
    json.dump(report.to_dict(), stream or sys.stdout, indent=1, sort_keys=False)
    (stream or sys.stdout).write("\n")
