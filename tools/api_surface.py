#!/usr/bin/env python
"""Public API surface snapshot: dump, check, or update.

Dumps the public names of the API-bearing modules (``repro``,
``repro.api``, ``repro.backend``, ``repro.campaign``, ``repro.flow``,
``repro.ingest``, ``repro.obs``, ``repro.passivity``,
``repro.resilience``) as sorted ``module.name`` lines and diffs
them against the committed snapshot ``tests/data/api_surface.txt``, so an
accidental rename/removal in a future refactor fails CI instead of
silently breaking downstream users.

Usage::

    python tools/api_surface.py            # print the current surface
    python tools/api_surface.py --check    # diff against the snapshot
    python tools/api_surface.py --update   # rewrite the snapshot
"""

from __future__ import annotations

import argparse
import difflib
import importlib
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT = REPO_ROOT / "tests" / "data" / "api_surface.txt"
MODULES = ("repro", "repro.api", "repro.backend", "repro.campaign",
           "repro.flow", "repro.ingest", "repro.obs", "repro.passivity",
           "repro.resilience")


def public_names(module_name: str) -> list[str]:
    """Sorted public names of one module (``__all__``, else non-underscore)."""
    module = importlib.import_module(module_name)
    names = getattr(module, "__all__", None)
    if names is None:
        names = [name for name in vars(module) if not name.startswith("_")]
    return sorted(set(names))


def current_surface() -> str:
    lines = []
    for module_name in MODULES:
        lines.extend(
            f"{module_name}.{name}" for name in public_names(module_name)
        )
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) when the surface differs from the snapshot",
    )
    mode.add_argument(
        "--update", action="store_true",
        help="rewrite the snapshot from the current surface",
    )
    args = parser.parse_args(argv)

    surface = current_surface()
    if args.update:
        SNAPSHOT.parent.mkdir(parents=True, exist_ok=True)
        SNAPSHOT.write_text(surface, encoding="utf-8")
        print(f"wrote {SNAPSHOT} ({len(surface.splitlines())} names)")
        return 0
    if args.check:
        if not SNAPSHOT.exists():
            print(f"missing snapshot {SNAPSHOT}; run with --update",
                  file=sys.stderr)
            return 1
        recorded = SNAPSHOT.read_text(encoding="utf-8")
        if recorded == surface:
            print(f"API surface unchanged ({len(surface.splitlines())} names)")
            return 0
        diff = difflib.unified_diff(
            recorded.splitlines(keepends=True),
            surface.splitlines(keepends=True),
            fromfile="tests/data/api_surface.txt",
            tofile="current",
        )
        sys.stderr.writelines(diff)
        print(
            "\nAPI surface changed; review the diff and run "
            "'python tools/api_surface.py --update' if intentional.",
            file=sys.stderr,
        )
        return 1
    print(surface, end="")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    sys.exit(main())
