"""Repository development tools (not installed with the package)."""
